"""Tests for the arbiter registry/factory."""

import pytest

from repro.arbiters import (
    FIFOArbiter,
    FixedPriorityArbiter,
    LotteryArbiter,
    RandomPermutationsArbiter,
    RoundRobinArbiter,
    TDMAArbiter,
    available_policies,
    create_arbiter,
)
from repro.sim.errors import ConfigurationError


def test_available_policies_lists_all_six():
    assert set(available_policies()) == {
        "round_robin",
        "fifo",
        "tdma",
        "lottery",
        "random_permutations",
        "fixed_priority",
    }


@pytest.mark.parametrize(
    "policy, expected_type",
    [
        ("round_robin", RoundRobinArbiter),
        ("fifo", FIFOArbiter),
        ("tdma", TDMAArbiter),
        ("lottery", LotteryArbiter),
        ("random_permutations", RandomPermutationsArbiter),
        ("fixed_priority", FixedPriorityArbiter),
    ],
)
def test_factory_builds_expected_type(policy, expected_type, rng):
    arbiter = create_arbiter(policy, 4, rng=rng)
    assert isinstance(arbiter, expected_type)
    assert arbiter.num_masters == 4


def test_unknown_policy_rejected(rng):
    with pytest.raises(ConfigurationError):
        create_arbiter("does_not_exist", 4, rng=rng)


def test_tdma_options_forwarded(rng):
    arbiter = create_arbiter("tdma", 2, rng=rng, slot_cycles=7, schedule=[1, 0])
    assert arbiter.slot_cycles == 7
    assert arbiter.schedule == [1, 0]


def test_lottery_tickets_forwarded(rng):
    arbiter = create_arbiter("lottery", 2, rng=rng, tickets=[3, 1])
    assert arbiter.tickets == [3, 1]


def test_priority_option_forwarded(rng):
    arbiter = create_arbiter("fixed_priority", 3, rng=rng, priorities=[1, 3, 2])
    assert arbiter.priorities == [1, 3, 2]


def test_default_rng_allows_omitting_generator():
    arbiter = create_arbiter("lottery", 2)
    assert arbiter.arbitrate([0, 1], 0) in (0, 1)
