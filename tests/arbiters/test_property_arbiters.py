"""Property-based tests over all arbitration policies.

Whatever the policy, two invariants must hold:

* an arbiter only ever grants a master that is actually requesting (or grants
  nobody);
* under saturation, work-conserving policies (everything except TDMA with
  issue-at-slot-start semantics) always grant somebody.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arbiters.fifo import FIFOArbiter
from repro.arbiters.lottery import LotteryArbiter
from repro.arbiters.priority import FixedPriorityArbiter
from repro.arbiters.random_permutations import RandomPermutationsArbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.tdma import TDMAArbiter


def build_all_arbiters(num_masters: int, seed: int):
    rng = np.random.default_rng(seed)
    return [
        RoundRobinArbiter(num_masters),
        FIFOArbiter(num_masters),
        TDMAArbiter(num_masters, slot_cycles=8),
        LotteryArbiter(num_masters, np.random.default_rng(seed)),
        RandomPermutationsArbiter(num_masters, rng),
        FixedPriorityArbiter(num_masters),
    ]


requestor_sets = st.lists(
    st.lists(st.integers(min_value=0, max_value=3), min_size=0, max_size=4, unique=True),
    min_size=1,
    max_size=30,
)


@given(requestor_sets, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_grant_is_always_a_requestor_or_none(request_sequences, seed):
    for arbiter in build_all_arbiters(4, seed):
        cycle = 0
        for requestors in request_sequences:
            for master in requestors:
                arbiter.on_request(master, cycle)
            choice = arbiter.arbitrate(requestors, cycle)
            assert choice is None or choice in requestors
            if choice is not None:
                arbiter.on_grant(choice, 1, cycle)
            cycle += 1


@given(st.integers(min_value=0, max_value=2**31 - 1), st.integers(min_value=2, max_value=4))
@settings(max_examples=30, deadline=None)
def test_work_conserving_policies_grant_under_saturation(seed, num_masters):
    rng = np.random.default_rng(seed)
    arbiters = [
        RoundRobinArbiter(num_masters),
        FIFOArbiter(num_masters),
        LotteryArbiter(num_masters, np.random.default_rng(seed)),
        RandomPermutationsArbiter(num_masters, rng),
        FixedPriorityArbiter(num_masters),
    ]
    everyone = list(range(num_masters))
    for arbiter in arbiters:
        for cycle in range(20):
            choice = arbiter.arbitrate(everyone, cycle)
            assert choice is not None
            arbiter.on_grant(choice, 1, cycle)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_grant_accounting_matches_number_of_grants(seed):
    rng = np.random.default_rng(seed)
    arbiter = RandomPermutationsArbiter(4, rng)
    grants = 0
    for cycle in range(100):
        choice = arbiter.arbitrate([0, 1, 2, 3], cycle)
        arbiter.on_grant(choice, 3, cycle)
        grants += 1
    assert sum(arbiter.grants_per_master) == grants
    assert sum(arbiter.cycles_granted_per_master) == 3 * grants
