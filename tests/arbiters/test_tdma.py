"""Tests for TDMA arbitration."""

import pytest

from repro.arbiters.tdma import TDMAArbiter
from repro.sim.errors import ArbitrationError


def test_slot_owner_follows_schedule():
    arbiter = TDMAArbiter(4, slot_cycles=10)
    assert arbiter.slot_owner(0) == 0
    assert arbiter.slot_owner(9) == 0
    assert arbiter.slot_owner(10) == 1
    assert arbiter.slot_owner(39) == 3
    assert arbiter.slot_owner(40) == 0


def test_grant_only_at_slot_start_for_owner():
    arbiter = TDMAArbiter(2, slot_cycles=5)
    assert arbiter.arbitrate([0, 1], 0) == 0
    # Not the first cycle of the slot: the request must wait (paper semantics).
    assert arbiter.arbitrate([0, 1], 2) is None
    # Wrong owner at the next slot start.
    assert arbiter.arbitrate([0], 5) is None
    assert arbiter.arbitrate([1], 5) == 1


def test_work_conserving_variant_grants_within_slot():
    arbiter = TDMAArbiter(2, slot_cycles=5, issue_only_at_slot_start=False)
    assert arbiter.arbitrate([0], 2) == 0


def test_custom_schedule_with_repeated_owner():
    arbiter = TDMAArbiter(3, slot_cycles=4, schedule=[0, 1, 0, 2])
    assert arbiter.slot_owner(0) == 0
    assert arbiter.slot_owner(4) == 1
    assert arbiter.slot_owner(8) == 0
    assert arbiter.slot_owner(12) == 2


def test_next_slot_start():
    arbiter = TDMAArbiter(4, slot_cycles=10)
    assert arbiter.next_slot_start(0, 0) == 0
    assert arbiter.next_slot_start(0, 1) == 40
    assert arbiter.next_slot_start(2, 1) == 20
    assert arbiter.next_slot_start(3, 35) == 70
    assert arbiter.next_slot_start(3, 30) == 30


def test_next_slot_start_unknown_master_rejected():
    arbiter = TDMAArbiter(2, slot_cycles=4, schedule=[0, 0])
    with pytest.raises(ArbitrationError):
        arbiter.next_slot_start(1, 0)


def test_invalid_construction_rejected():
    with pytest.raises(ArbitrationError):
        TDMAArbiter(2, slot_cycles=0)
    with pytest.raises(ArbitrationError):
        TDMAArbiter(2, schedule=[])
    with pytest.raises(ArbitrationError):
        TDMAArbiter(2, schedule=[0, 5])


def test_bandwidth_waste_with_short_requests():
    """A request shorter than the slot leaves the remainder of the slot idle:
    only one grant can happen per slot, which is the inefficiency the paper
    describes for TDMA with heterogeneous request durations."""
    arbiter = TDMAArbiter(2, slot_cycles=56)
    grants = 0
    for cycle in range(0, 112):
        choice = arbiter.arbitrate([0, 1], cycle)
        if choice is not None:
            arbiter.on_grant(choice, 5, cycle)
            grants += 1
    assert grants == 2  # one per slot, despite 5-cycle requests
