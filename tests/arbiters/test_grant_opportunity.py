"""Unit tests for the arbiters' fast-forward hooks.

``next_grant_opportunity`` bounds how far the kernel may jump while the bus
idles with pending requests; ``advance_cycles`` must replay per-cycle state
(CBA credits, blocked accounting) in bulk, exactly.
"""

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.arbiters.tdma import TDMAArbiter
from repro.core.cba import CreditBasedArbiter
from repro.core.credit import CreditBank
from repro.sim.config import CBAParameters


class TestDefaultOpportunity:
    def test_always_granting_policy_reports_now(self):
        arbiter = RoundRobinArbiter(4)
        assert arbiter.next_grant_opportunity([1, 2], cycle=37) == 37


class TestTDMAOpportunity:
    def test_slot_start_with_pending_owner_is_now(self):
        arbiter = TDMAArbiter(4, slot_cycles=10)
        assert arbiter.next_grant_opportunity([0], cycle=0) == 0
        assert arbiter.next_grant_opportunity([2], cycle=20) == 20

    def test_mid_slot_waits_for_next_owned_boundary(self):
        arbiter = TDMAArbiter(4, slot_cycles=10)
        # Cycle 3 sits in master 0's slot; master 0 may only start at a
        # boundary, so its next chance is its next slot at cycle 40.
        assert arbiter.next_grant_opportunity([0], cycle=3) == 40
        # Master 1's slot starts at cycle 10.
        assert arbiter.next_grant_opportunity([1], cycle=3) == 10
        # Several pending masters: the earliest owned boundary wins.
        assert arbiter.next_grant_opportunity([3, 1], cycle=3) == 10

    def test_work_conserving_variant_grants_mid_slot(self):
        arbiter = TDMAArbiter(4, slot_cycles=10, issue_only_at_slot_start=False)
        assert arbiter.next_grant_opportunity([0], cycle=3) == 3
        assert arbiter.next_grant_opportunity([1], cycle=3) == 10

    def test_master_outside_schedule_never_gets_a_chance(self):
        arbiter = TDMAArbiter(4, slot_cycles=10, schedule=[0, 1])
        assert arbiter.next_grant_opportunity([3], cycle=5) is None

    def test_opportunity_agrees_with_arbitrate(self):
        """The hint must name a cycle where arbitrate() really grants, and
        arbitrate() must decline every cycle before it."""
        arbiter = TDMAArbiter(3, slot_cycles=7, schedule=[2, 0, 1])
        for start in range(40):
            opportunity = arbiter.next_grant_opportunity([1], cycle=start)
            assert opportunity is not None
            for cycle in range(start, opportunity):
                assert arbiter.arbitrate([1], cycle) is None
            assert arbiter.arbitrate([1], opportunity) == 1


def _cba(initial: int | None = None) -> CreditBasedArbiter:
    params = CBAParameters(max_latency=8, num_cores=2, initial_budget=initial)
    return CreditBasedArbiter(RoundRobinArbiter(2), params)


class TestCBAOpportunity:
    def test_eligible_pending_master_is_granted_now(self):
        arbiter = _cba()
        assert arbiter.next_grant_opportunity([0, 1], cycle=4) == 4

    def test_blocked_masters_wake_at_the_earliest_refill(self):
        arbiter = _cba(initial=0)
        # Full budget is scale * MaxL = 16, replenishment 1/cycle per core.
        assert arbiter.next_grant_opportunity([0], cycle=100) == 116

    def test_advance_cycles_matches_per_cycle_updates_while_holding(self):
        bulk = _cba(initial=3)
        stepped = _cba(initial=3)
        for cycle in range(5):
            stepped.cycle_update(cycle, holder=1)
        bulk.advance_cycles(0, 5, holder=1, idle_requestors=())
        assert bulk.budgets() == stepped.budgets()

    def test_advance_cycles_accounts_blocked_idle_requestors(self):
        bulk = _cba(initial=0)
        stepped = _cba(initial=0)
        for cycle in range(6):
            assert stepped.arbitrate([0, 1], cycle) is None
            stepped.cycle_update(cycle, holder=None)
        bulk.advance_cycles(0, 6, holder=None, idle_requestors=[0, 1])
        assert bulk.blocked_cycles == stepped.blocked_cycles == 6
        assert bulk.budgets() == stepped.budgets()
        for fast, slow in zip(bulk.credits.accounts, stepped.credits.accounts, strict=True):
            assert fast.total_replenished == slow.total_replenished
            assert fast.total_drained == slow.total_drained


class TestCreditBankBulkAdvance:
    @pytest.mark.parametrize("holder", [None, 0, 1])
    @pytest.mark.parametrize("initial", [0, 5, 16])
    def test_advance_equals_repeated_steps(self, holder, initial):
        params = CBAParameters(max_latency=8, num_cores=2, initial_budget=initial)
        bulk, stepped = CreditBank(params), CreditBank(params)
        for _ in range(37):
            stepped.step(holder)
        bulk.advance(37, holder)
        assert bulk.balances() == stepped.balances()
        for fast, slow in zip(bulk.accounts, stepped.accounts, strict=True):
            assert fast.total_replenished == slow.total_replenished
            assert fast.total_drained == slow.total_drained

    def test_replenish_many_saturates_like_single_steps(self):
        params = CBAParameters(max_latency=8, num_cores=2, initial_budget=10)
        bulk, stepped = CreditBank(params), CreditBank(params)
        for _ in range(50):  # far past the cap
            stepped.accounts[0].replenish()
        bulk.accounts[0].replenish_many(50)
        assert bulk.accounts[0].balance == stepped.accounts[0].balance
        assert bulk.accounts[0].total_replenished == stepped.accounts[0].total_replenished
