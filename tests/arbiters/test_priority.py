"""Tests for fixed-priority arbitration."""

import pytest

from repro.arbiters.priority import FixedPriorityArbiter
from repro.sim.errors import ArbitrationError


def test_highest_priority_requestor_wins():
    arbiter = FixedPriorityArbiter(4)
    assert arbiter.arbitrate([0, 1, 2, 3], 0) == 0
    assert arbiter.arbitrate([2, 3], 0) == 2


def test_custom_priorities_respected():
    arbiter = FixedPriorityArbiter(3, priorities=[1, 3, 2])
    assert arbiter.arbitrate([0, 1, 2], 0) == 1
    assert arbiter.arbitrate([0, 2], 0) == 2


def test_no_requestors_returns_none():
    assert FixedPriorityArbiter(2).arbitrate([], 0) is None


def test_low_priority_master_starves_under_saturation():
    """The starvation argument of Section II: with core 0 always requesting,
    core 1 is never granted under fixed priority."""
    arbiter = FixedPriorityArbiter(2)
    for _ in range(100):
        choice = arbiter.arbitrate([0, 1], 0)
        arbiter.on_grant(choice, 1, 0)
    assert arbiter.grants_per_master == [100, 0]


def test_invalid_priorities_rejected():
    with pytest.raises(ArbitrationError):
        FixedPriorityArbiter(3, priorities=[1, 2])
    with pytest.raises(ArbitrationError):
        FixedPriorityArbiter(3, priorities=[1, 1, 2])
