"""Tests for lottery arbitration."""

import numpy as np
import pytest

from repro.arbiters.lottery import LotteryArbiter
from repro.sim.errors import ArbitrationError


def test_only_requesting_masters_can_win(rng):
    arbiter = LotteryArbiter(4, rng)
    for _ in range(50):
        assert arbiter.arbitrate([1, 3], 0) in (1, 3)


def test_no_requestors_returns_none(rng):
    assert LotteryArbiter(4, rng).arbitrate([], 0) is None


def test_single_requestor_always_wins(rng):
    arbiter = LotteryArbiter(4, rng)
    assert all(arbiter.arbitrate([2], 0) == 2 for _ in range(10))


def test_uniform_tickets_give_roughly_equal_slots(rng):
    arbiter = LotteryArbiter(2, rng)
    wins = [0, 0]
    for _ in range(2000):
        wins[arbiter.arbitrate([0, 1], 0)] += 1
    assert abs(wins[0] - wins[1]) < 250  # ~5 sigma for a fair coin over 2000 draws


def test_ticket_weights_bias_the_draw(rng):
    arbiter = LotteryArbiter(2, rng, tickets=[9, 1])
    wins = [0, 0]
    for _ in range(2000):
        wins[arbiter.arbitrate([0, 1], 0)] += 1
    assert wins[0] > 1600  # expectation 1800


def test_draws_are_reproducible_for_a_fixed_seed():
    a = LotteryArbiter(3, np.random.default_rng(7))
    b = LotteryArbiter(3, np.random.default_rng(7))
    seq_a = [a.arbitrate([0, 1, 2], 0) for _ in range(20)]
    seq_b = [b.arbitrate([0, 1, 2], 0) for _ in range(20)]
    assert seq_a == seq_b


def test_invalid_ticket_configuration_rejected(rng):
    with pytest.raises(ArbitrationError):
        LotteryArbiter(2, rng, tickets=[1])
    with pytest.raises(ArbitrationError):
        LotteryArbiter(2, rng, tickets=[1, 0])
