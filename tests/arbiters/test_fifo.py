"""Tests for FIFO arbitration."""

from repro.arbiters.fifo import FIFOArbiter


def test_grants_oldest_request_first():
    arbiter = FIFOArbiter(3)
    arbiter.on_request(2, cycle=1)
    arbiter.on_request(0, cycle=3)
    arbiter.on_request(1, cycle=5)
    assert arbiter.arbitrate([0, 1, 2], 6) == 2
    arbiter.on_grant(2, 4, 6)
    assert arbiter.arbitrate([0, 1], 7) == 0
    arbiter.on_grant(0, 4, 7)
    assert arbiter.arbitrate([1], 8) == 1


def test_ties_broken_by_arrival_order_then_index():
    arbiter = FIFOArbiter(3)
    arbiter.on_request(1, cycle=2)
    arbiter.on_request(0, cycle=2)
    # Master 1 asserted its request first within the same cycle.
    assert arbiter.arbitrate([0, 1], 3) == 1


def test_unreported_requestor_treated_as_new_arrival():
    arbiter = FIFOArbiter(2)
    arbiter.on_request(1, cycle=0)
    # Master 0 never reported via on_request: it is treated as arriving now,
    # so the older request from master 1 wins.
    assert arbiter.arbitrate([0, 1], 10) == 1


def test_duplicate_on_request_keeps_original_arrival():
    arbiter = FIFOArbiter(2)
    arbiter.on_request(0, cycle=1)
    arbiter.on_request(1, cycle=2)
    arbiter.on_request(0, cycle=9)  # re-assertion must not refresh the arrival
    assert arbiter.arbitrate([0, 1], 10) == 0


def test_grant_clears_arrival_record():
    arbiter = FIFOArbiter(2)
    arbiter.on_request(0, cycle=0)
    arbiter.on_request(1, cycle=1)
    arbiter.on_grant(0, 4, 2)
    arbiter.on_request(0, cycle=8)
    assert arbiter.arbitrate([0, 1], 9) == 1


def test_no_requestors_returns_none():
    assert FIFOArbiter(2).arbitrate([], 0) is None


def test_reset_clears_queue_state():
    arbiter = FIFOArbiter(2)
    arbiter.on_request(1, cycle=0)
    arbiter.reset()
    arbiter.on_request(0, cycle=5)
    assert arbiter.arbitrate([0, 1], 6) == 0


def test_note_request_alias_still_works():
    arbiter = FIFOArbiter(2)
    arbiter.note_request(1, cycle=0)
    assert arbiter.arbitrate([0, 1], 3) == 1
