"""Tests for cache replacement policies."""

import numpy as np

from repro.cache.block import CacheLine
from repro.cache.replacement import LRUReplacement, RandomReplacement


def make_ways(last_used):
    ways = []
    for i, cycle in enumerate(last_used):
        line = CacheLine()
        line.fill(tag=i, cycle=cycle)
        ways.append(line)
    return ways


class TestLRU:
    def test_selects_least_recently_used(self):
        ways = make_ways([10, 3, 7, 9])
        assert LRUReplacement().select_victim(ways, cycle=20) == 1

    def test_on_access_updates_recency(self):
        policy = LRUReplacement()
        ways = make_ways([1, 2, 3, 4])
        policy.on_access(ways, 0, cycle=100)
        assert policy.select_victim(ways, cycle=101) == 1

    def test_sequence_of_touches_cycles_through_victims(self):
        policy = LRUReplacement()
        ways = make_ways([0, 0, 0, 0])
        for cycle, way in enumerate([0, 1, 2, 3], start=1):
            policy.on_access(ways, way, cycle)
        assert policy.select_victim(ways, cycle=10) == 0


class TestRandom:
    def test_victim_always_in_range(self, rng):
        policy = RandomReplacement(rng)
        ways = make_ways([1, 2, 3, 4])
        for _ in range(100):
            assert 0 <= policy.select_victim(ways, cycle=5) < 4

    def test_every_way_eventually_chosen(self, rng):
        policy = RandomReplacement(rng)
        ways = make_ways([1, 2, 3, 4])
        chosen = {policy.select_victim(ways, cycle=0) for _ in range(200)}
        assert chosen == {0, 1, 2, 3}

    def test_reproducible_with_same_seed(self):
        ways = make_ways([1, 2, 3, 4])
        a = RandomReplacement(np.random.default_rng(9))
        b = RandomReplacement(np.random.default_rng(9))
        seq_a = [a.select_victim(ways, 0) for _ in range(50)]
        seq_b = [b.select_victim(ways, 0) for _ in range(50)]
        assert seq_a == seq_b
