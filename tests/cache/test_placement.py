"""Tests for cache placement functions."""

import numpy as np
import pytest

from repro.cache.placement import ModuloPlacement, RandomPlacement


class TestModuloPlacement:
    def test_consecutive_blocks_map_to_consecutive_sets(self):
        placement = ModuloPlacement(num_sets=8, line_bytes=32)
        indices = [placement.set_index(addr) for addr in range(0, 8 * 32, 32)]
        assert indices == list(range(8))

    def test_offset_within_line_does_not_change_set(self):
        placement = ModuloPlacement(num_sets=8, line_bytes=32)
        assert placement.set_index(0x100) == placement.set_index(0x11F)

    def test_tag_identifies_the_block(self):
        placement = ModuloPlacement(num_sets=8, line_bytes=32)
        assert placement.tag(0x100) == 0x100 // 32
        assert placement.tag(0x100) != placement.tag(0x100 + 32)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            ModuloPlacement(num_sets=0, line_bytes=32)


class TestRandomPlacement:
    def test_deterministic_for_fixed_seed(self):
        a = RandomPlacement(num_sets=16, line_bytes=32, seed=7)
        b = RandomPlacement(num_sets=16, line_bytes=32, seed=7)
        for address in range(0, 4096, 32):
            assert a.set_index(address) == b.set_index(address)

    def test_different_seeds_give_different_mappings(self):
        a = RandomPlacement(num_sets=64, line_bytes=32, seed=1)
        b = RandomPlacement(num_sets=64, line_bytes=32, seed=2)
        addresses = range(0, 64 * 32 * 4, 32)
        differences = sum(a.set_index(x) != b.set_index(x) for x in addresses)
        assert differences > len(list(addresses)) // 2

    def test_indices_stay_in_range(self):
        placement = RandomPlacement(num_sets=16, line_bytes=32, seed=3)
        for address in range(0, 10_000, 32):
            assert 0 <= placement.set_index(address) < 16

    def test_offset_within_line_does_not_change_set(self):
        placement = RandomPlacement(num_sets=16, line_bytes=32, seed=3)
        assert placement.set_index(0x200) == placement.set_index(0x21F)

    def test_distribution_is_roughly_uniform(self):
        placement = RandomPlacement(num_sets=8, line_bytes=32, seed=11)
        counts = [0] * 8
        num_blocks = 8000
        for block in range(num_blocks):
            counts[placement.set_index(block * 32)] += 1
        expected = num_blocks / 8
        for count in counts:
            assert abs(count - expected) < 0.25 * expected

    def test_tags_never_alias_within_a_set(self):
        """Two different blocks mapping to the same set must have different
        tags — the property that keeps random placement functionally correct."""
        placement = RandomPlacement(num_sets=4, line_bytes=32, seed=5)
        seen: dict[tuple[int, int], int] = {}
        for block in range(2000):
            address = block * 32
            key = (placement.set_index(address), placement.tag(address))
            assert key not in seen or seen[key] == address
            seen[key] = address


class TestVectorisedPlacement:
    """The array forms feeding the batch interpreter must be bit-identical
    per element to the scalar mapping — for both placements, power-of-two and
    non-power-of-two geometries, and addresses spanning the full span the
    workloads generate (including the per-core base-address offsets)."""

    ADDRESSES = np.array(
        [0, 1, 31, 32, 0x100, 0x11F, 0x1000_0000, 0x1000_0020, 0x7123_4567]
        + [0x1000_0000 + 37 * k for k in range(500)],
        dtype=np.int64,
    )

    @pytest.mark.parametrize("num_sets,line_bytes", [(16, 32), (12, 48)])
    def test_modulo_matches_scalar(self, num_sets, line_bytes):
        placement = ModuloPlacement(num_sets=num_sets, line_bytes=line_bytes)
        sets = placement.set_index_array(self.ADDRESSES)
        tags = placement.tag_array(self.ADDRESSES)
        assert sets.tolist() == [placement.set_index(int(a)) for a in self.ADDRESSES]
        assert tags.tolist() == [placement.tag(int(a)) for a in self.ADDRESSES]

    @pytest.mark.parametrize("num_sets,line_bytes", [(16, 32), (12, 48)])
    @pytest.mark.parametrize("seed", [0, 7, 2**63 - 1, 2**64 - 1])
    def test_random_matches_scalar(self, num_sets, line_bytes, seed):
        placement = RandomPlacement(num_sets=num_sets, line_bytes=line_bytes, seed=seed)
        sets = placement.set_index_array(self.ADDRESSES)
        tags = placement.tag_array(self.ADDRESSES)
        assert sets.tolist() == [placement.set_index(int(a)) for a in self.ADDRESSES]
        assert tags.tolist() == [placement.tag(int(a)) for a in self.ADDRESSES]

    def test_generic_fallback_matches_scalar(self):
        """A placement subclass that only defines the scalar mapping still
        gets a correct (if slow) vectorised form from the base class."""
        from repro.cache.placement import PlacementPolicy

        class ReversedPlacement(PlacementPolicy):
            def set_index(self, address: int) -> int:
                return self.num_sets - 1 - self.block_address(address) % self.num_sets

        placement = ReversedPlacement(num_sets=8, line_bytes=32)
        sets = placement.set_index_array(self.ADDRESSES)
        assert sets.tolist() == [placement.set_index(int(a)) for a in self.ADDRESSES]
