"""Tests for the generic set-associative cache."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.placement import ModuloPlacement
from repro.cache.replacement import LRUReplacement
from repro.sim.config import CacheGeometry
from repro.sim.errors import ConfigurationError


def make_cache(write_back=True, write_allocate=None, size=1024, assoc=2, line=32):
    geometry = CacheGeometry(size_bytes=size, line_bytes=line, associativity=assoc)
    return SetAssociativeCache(
        name="test",
        geometry=geometry,
        placement=ModuloPlacement(geometry.num_sets, line),
        replacement=LRUReplacement(),
        write_back=write_back,
        write_allocate=write_allocate,
    )


def test_placement_geometry_mismatch_rejected():
    geometry = CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2)
    with pytest.raises(ConfigurationError):
        SetAssociativeCache(
            "bad", geometry, ModuloPlacement(4, 32), LRUReplacement(), write_back=True
        )


def test_first_access_misses_then_hits():
    cache = make_cache()
    assert not cache.access(0x100, is_write=False, cycle=0).hit
    assert cache.access(0x100, is_write=False, cycle=1).hit
    assert cache.access(0x11F, is_write=False, cycle=2).hit  # same line
    assert cache.miss_rate() == pytest.approx(1 / 3)


def test_eviction_when_set_overflows():
    cache = make_cache(size=1024, assoc=2, line=32)  # 16 sets
    set_span = 16 * 32
    addresses = [0x0, set_span, 2 * set_span]  # three blocks, same set
    for address in addresses:
        cache.access(address, is_write=False, cycle=address)
    assert cache.stats.counter("evictions").value == 1
    assert not cache.contains(addresses[0])  # LRU victim
    assert cache.contains(addresses[1])
    assert cache.contains(addresses[2])


def test_write_back_cache_marks_dirty_and_writes_back():
    cache = make_cache(write_back=True)
    set_span = 16 * 32
    cache.access(0x0, is_write=True, cycle=0)
    assert cache.is_dirty(0x0)
    # Evict the dirty line by filling the set with two more blocks.
    cache.access(set_span, is_write=False, cycle=1)
    result = cache.access(2 * set_span, is_write=False, cycle=2)
    assert result.writeback
    assert cache.stats.counter("writebacks").value == 1


def test_write_through_cache_never_dirty():
    cache = make_cache(write_back=False, write_allocate=True)
    cache.access(0x0, is_write=True, cycle=0)
    assert not cache.is_dirty(0x0)


def test_no_write_allocate_write_miss_does_not_install():
    cache = make_cache(write_back=False, write_allocate=False)
    result = cache.access(0x200, is_write=True, cycle=0)
    assert not result.hit
    assert not cache.contains(0x200)
    # A read of the same line still misses afterwards.
    assert not cache.access(0x200, is_write=False, cycle=1).hit


def test_write_allocate_default_follows_write_policy():
    assert make_cache(write_back=True).write_allocate is True
    assert make_cache(write_back=False).write_allocate is False


def test_hit_and_miss_counters():
    cache = make_cache()
    cache.access(0x0, is_write=False, cycle=0)   # read miss
    cache.access(0x0, is_write=False, cycle=1)   # read hit
    cache.access(0x0, is_write=True, cycle=2)    # write hit
    cache.access(0x400, is_write=True, cycle=3)  # write miss
    assert cache.stats.counter("read_misses").value == 1
    assert cache.stats.counter("read_hits").value == 1
    assert cache.stats.counter("write_hits").value == 1
    assert cache.stats.counter("write_misses").value == 1
    assert cache.accesses == 4
    assert cache.hits == 2


def test_occupancy_and_flush():
    cache = make_cache()
    for i in range(8):
        cache.access(i * 32, is_write=True, cycle=i)
    assert cache.occupancy() == pytest.approx(8 / 32)
    dirty_dropped = cache.flush()
    assert dirty_dropped == 8
    assert cache.occupancy() == 0.0


def test_reset_clears_contents_and_stats():
    cache = make_cache()
    cache.access(0x0, is_write=False, cycle=0)
    cache.reset()
    assert cache.accesses == 0
    assert not cache.contains(0x0)


def test_miss_rate_of_empty_cache_is_zero():
    assert make_cache().miss_rate() == 0.0
