"""Tests for the partitioned L2 and the bus-slave adapter."""

import pytest

from repro.bus.latency import LatencyTable, TransactionClass
from repro.bus.transaction import AccessType, BusRequest
from repro.cache.l2 import L2BusSlave, build_l2
from repro.memory.controller import MemoryController
from repro.sim.config import BusTimings, CacheGeometry
from repro.sim.errors import ConfigurationError


@pytest.fixture
def l2_geometry():
    return CacheGeometry(size_bytes=8 * 1024, line_bytes=32, associativity=2)


@pytest.fixture
def slave(l2_geometry, rng):
    l2 = build_l2(l2_geometry, num_cores=4, partitioned=True, random_caches=False, rng=rng)
    return L2BusSlave(l2, MemoryController(), LatencyTable(BusTimings()))


class TestBuildL2:
    def test_partitioned_l2_has_one_partition_per_core(self, l2_geometry, rng):
        l2 = build_l2(l2_geometry, 4, partitioned=True, random_caches=False, rng=rng)
        assert l2.num_partitions == 4
        assert l2.partitions[0].geometry.size_bytes == 2 * 1024

    def test_unified_l2_has_single_partition(self, l2_geometry, rng):
        l2 = build_l2(l2_geometry, 4, partitioned=False, random_caches=False, rng=rng)
        assert l2.num_partitions == 1
        assert l2.partition_for(0) is l2.partition_for(3)

    def test_partition_isolation(self, l2_geometry, rng):
        """A core's accesses never evict another core's lines."""
        l2 = build_l2(l2_geometry, 2, partitioned=True, random_caches=False, rng=rng)
        l2.access(0, 0x1000, is_write=False, cycle=0)
        # Core 1 sweeps far more data than its own partition holds.
        for i in range(1000):
            l2.access(1, 0x8000 + i * 32, is_write=False, cycle=i)
        assert l2.partition_for(0).contains(0x1000)

    def test_too_small_l2_for_partitioning_rejected(self, rng):
        tiny = CacheGeometry(size_bytes=128, line_bytes=32, associativity=2)
        with pytest.raises(ConfigurationError):
            build_l2(tiny, 4, partitioned=True, random_caches=False, rng=rng)


class TestL2BusSlave:
    def test_l2_read_hit_takes_5_cycles(self, slave):
        request = BusRequest(master_id=0, address=0x100, access=AccessType.READ)
        slave.resolve(request, cycle=0)  # miss, installs the line
        repeat = BusRequest(master_id=0, address=0x100, access=AccessType.READ)
        assert slave.resolve(repeat, cycle=1) == 5
        assert repeat.annotations["transaction_class"] == TransactionClass.L2_HIT_READ.value

    def test_l2_write_hit_takes_6_cycles(self, slave):
        slave.resolve(BusRequest(master_id=0, address=0x100), cycle=0)
        write = BusRequest(master_id=0, address=0x100, access=AccessType.WRITE)
        assert slave.resolve(write, cycle=1) == 6

    def test_clean_miss_takes_28_cycles_and_accesses_memory(self, slave):
        request = BusRequest(master_id=0, address=0x2000, access=AccessType.READ)
        assert slave.resolve(request, cycle=0) == 28
        assert request.annotations["transaction_class"] == TransactionClass.L2_MISS_CLEAN.value
        assert slave.memory.total_accesses == 1

    def test_dirty_eviction_takes_56_cycles(self, slave, l2_geometry):
        """A miss that evicts a dirty victim performs two memory accesses."""
        partition_sets = slave.l2.partition_for(0).geometry.num_sets
        set_span = partition_sets * 32
        # Dirty a line, then force two more blocks into the same set.
        slave.resolve(BusRequest(master_id=0, address=0x0, access=AccessType.WRITE), 0)
        slave.resolve(BusRequest(master_id=0, address=set_span, access=AccessType.READ), 1)
        request = BusRequest(master_id=0, address=2 * set_span, access=AccessType.READ)
        duration = slave.resolve(request, cycle=2)
        assert duration == 56
        assert request.annotations["transaction_class"] == TransactionClass.L2_MISS_DIRTY.value

    def test_atomic_always_takes_56_cycles_and_two_memory_accesses(self, slave):
        request = BusRequest(master_id=0, address=0x3000, access=AccessType.ATOMIC)
        assert slave.resolve(request, cycle=0) == 56
        assert slave.memory.total_accesses == 2

    def test_requests_from_different_cores_use_their_own_partition(self, slave):
        slave.resolve(BusRequest(master_id=0, address=0x100), cycle=0)
        # The same address from another core misses: partitions are private.
        other = BusRequest(master_id=1, address=0x100)
        assert slave.resolve(other, cycle=1) == 28

    def test_stats_and_reset(self, slave):
        slave.resolve(BusRequest(master_id=0, address=0x100), cycle=0)
        assert slave.stats.counter("requests").value == 1
        slave.reset()
        assert slave.stats.counter("requests").value == 0
        assert slave.memory.total_accesses == 0
