"""Property-based tests of cache invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.placement import ModuloPlacement, RandomPlacement
from repro.cache.replacement import LRUReplacement, RandomReplacement
from repro.sim.config import CacheGeometry


def build_cache(random_policies: bool, seed: int) -> SetAssociativeCache:
    geometry = CacheGeometry(size_bytes=512, line_bytes=32, associativity=2)
    if random_policies:
        placement = RandomPlacement(geometry.num_sets, 32, seed=seed)
        replacement = RandomReplacement(np.random.default_rng(seed))
    else:
        placement = ModuloPlacement(geometry.num_sets, 32)
        replacement = LRUReplacement()
    return SetAssociativeCache(
        "prop", geometry, placement, replacement, write_back=True
    )


accesses = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4095), st.booleans()),
    min_size=1,
    max_size=300,
)


@given(accesses, st.booleans(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity_and_counters_balance(seq, random_policies, seed):
    cache = build_cache(random_policies, seed)
    for address, is_write in seq:
        cache.access(address, is_write, cycle=0)
    assert 0.0 <= cache.occupancy() <= 1.0
    assert cache.hits + cache.misses == len(seq)


@given(accesses, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_access_after_access_to_same_line_is_a_hit(seq, seed):
    """Re-touching the line just accessed always hits (no self-eviction)."""
    cache = build_cache(True, seed)
    for address, is_write in seq:
        cache.access(address, is_write, cycle=0)
        assert cache.access(address, False, cycle=0).hit


@given(accesses, st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_writebacks_only_happen_for_previously_written_lines(seq, seed):
    """Every writeback must correspond to some earlier write (no phantom dirt)."""
    cache = build_cache(True, seed)
    writes = 0
    for address, is_write in seq:
        if is_write:
            writes += 1
        cache.access(address, is_write, cycle=0)
    assert cache.stats.counter("writebacks").value <= writes


@given(accesses)
@settings(max_examples=40, deadline=None)
def test_random_and_modulo_placement_agree_on_hit_miss_totals_for_repeats(seq):
    """The *total* number of accesses recorded is placement independent."""
    modulo = build_cache(False, 0)
    random_cache = build_cache(True, 1)
    for address, is_write in seq:
        modulo.access(address, is_write, cycle=0)
        random_cache.access(address, is_write, cycle=0)
    assert modulo.accesses == random_cache.accesses == len(seq)
