"""Tests for the private L1 cache wrapper."""

import pytest

from repro.cache.l1 import build_l1_cache
from repro.cache.placement import ModuloPlacement, RandomPlacement
from repro.cache.replacement import LRUReplacement, RandomReplacement
from repro.sim.config import CacheGeometry


@pytest.fixture
def geometry():
    return CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2)


def test_write_through_data_cache_always_uses_bus_for_stores(geometry, rng):
    l1 = build_l1_cache("l1d", geometry, random_caches=False, rng=rng)
    outcome = l1.access(0x100, is_write=True, cycle=0)
    assert outcome.needs_bus
    # Even after the line is resident, a store still propagates (write-through).
    l1.access(0x100, is_write=False, cycle=1)
    outcome = l1.access(0x100, is_write=True, cycle=2)
    assert outcome.needs_bus


def test_read_hit_does_not_use_bus(geometry, rng):
    l1 = build_l1_cache("l1d", geometry, random_caches=False, rng=rng)
    first = l1.access(0x200, is_write=False, cycle=0)
    assert first.needs_bus and not first.hit
    second = l1.access(0x200, is_write=False, cycle=1)
    assert second.hit and not second.needs_bus
    assert second.latency == 1


def test_random_configuration_uses_random_policies(geometry, rng):
    l1 = build_l1_cache("l1d", geometry, random_caches=True, rng=rng)
    assert isinstance(l1.cache.placement, RandomPlacement)
    assert isinstance(l1.cache.replacement, RandomReplacement)


def test_conventional_configuration_uses_modulo_and_lru(geometry, rng):
    l1 = build_l1_cache("l1d", geometry, random_caches=False, rng=rng)
    assert isinstance(l1.cache.placement, ModuloPlacement)
    assert isinstance(l1.cache.replacement, LRUReplacement)


def test_custom_hit_latency_propagates(geometry, rng):
    l1 = build_l1_cache("l1d", geometry, random_caches=False, rng=rng, hit_latency=2)
    assert l1.access(0x0, is_write=False, cycle=0).latency == 2


def test_invalid_hit_latency_rejected(geometry, rng):
    with pytest.raises(ValueError):
        build_l1_cache("l1d", geometry, random_caches=False, rng=rng, hit_latency=0)


def test_miss_rate_and_reset(geometry, rng):
    l1 = build_l1_cache("l1d", geometry, random_caches=False, rng=rng)
    l1.access(0x0, is_write=False, cycle=0)
    l1.access(0x0, is_write=False, cycle=1)
    assert l1.miss_rate() == pytest.approx(0.5)
    l1.reset()
    assert l1.miss_rate() == 0.0


def test_different_runs_see_different_random_placements(geometry):
    """Random placement must change with the seed — the property MBPTA needs."""
    import numpy as np

    l1_a = build_l1_cache("a", geometry, random_caches=True, rng=np.random.default_rng(1))
    l1_b = build_l1_cache("b", geometry, random_caches=True, rng=np.random.default_rng(2))
    addresses = range(0, 1024 * 8, 32)
    diff = sum(
        l1_a.cache.placement.set_index(x) != l1_b.cache.placement.set_index(x)
        for x in addresses
    )
    assert diff > len(list(addresses)) // 2
