"""CLI smoke tests for the campaign flags (--jobs / --store / --resume)."""

from __future__ import annotations

import pytest

from repro.cli import main

FIGURE1_ARGS = [
    "figure1", "--benchmarks", "canrdr", "--runs", "1", "--scale", "0.05",
    "--quiet",
]


def _store_lines(path) -> int:
    return sum(1 for line in path.read_text().splitlines() if line.strip())


def test_figure1_jobs_flag_produces_identical_output(capsys):
    assert main([*FIGURE1_ARGS, "--jobs", "1"]) == 0
    serial_out = capsys.readouterr().out
    assert main([*FIGURE1_ARGS, "--jobs", "2"]) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out
    assert "Figure 1 headline numbers" in serial_out


def test_figure1_resume_skips_finished_jobs(tmp_path, capsys):
    store = tmp_path / "figure1.jsonl"
    args = [*FIGURE1_ARGS, "--store", str(store)]

    assert main(args) == 0
    first_out = capsys.readouterr().out
    lines_after_first = _store_lines(store)
    assert lines_after_first > 0

    # Second invocation resumes: same output, nothing re-run, nothing appended.
    assert main([*args, "--resume"]) == 0
    second_out = capsys.readouterr().out
    assert second_out == first_out
    assert _store_lines(store) == lines_after_first


def test_mbpta_store_and_resume_roundtrip(tmp_path, capsys):
    store = tmp_path / "mbpta.jsonl"
    args = [
        "mbpta", "canrdr", "--runs", "20", "--scale", "0.05", "--quiet",
        "--store", str(store),
    ]
    assert main(args) == 0
    first_out = capsys.readouterr().out
    lines = _store_lines(store)

    assert main([*args, "--resume"]) == 0
    assert capsys.readouterr().out == first_out
    assert _store_lines(store) == lines


def test_table1_runs_through_the_campaign_engine(tmp_path, capsys):
    store = tmp_path / "table1.jsonl"
    args = ["table1", "--tua-requests", "5", "--rows", "3", "--quiet",
            "--store", str(store)]
    assert main(args) == 0
    first_out = capsys.readouterr().out

    # Resume rebuilds the full table from the stored payload alone.
    assert main([*args, "--resume"]) == 0
    assert capsys.readouterr().out == first_out


def test_resume_without_store_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([*FIGURE1_ARGS, "--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --store" in capsys.readouterr().err


def test_retries_flag_changes_no_output_on_a_clean_run(capsys):
    assert main([*FIGURE1_ARGS, "--jobs", "2"]) == 0
    plain_out = capsys.readouterr().out
    assert main([*FIGURE1_ARGS, "--jobs", "2", "--retries", "2",
                 "--job-timeout", "120"]) == 0
    assert capsys.readouterr().out == plain_out


def test_negative_retries_is_a_user_error(capsys):
    assert main([*FIGURE1_ARGS, "--retries", "-1"]) == 2
    assert "--retries cannot be negative" in capsys.readouterr().err


def test_strict_store_flag_turns_corruption_into_an_error(tmp_path, capsys):
    store = tmp_path / "figure1.jsonl"
    args = [*FIGURE1_ARGS, "--store", str(store)]
    assert main(args) == 0
    capsys.readouterr()
    lines = store.read_text().splitlines()
    lines.insert(0, "not json at all")
    store.write_text("\n".join(lines) + "\n")

    # Default: the corrupt line quarantines and the campaign resumes fine.
    assert main([*args, "--resume"]) == 0
    capsys.readouterr()
    # Strict: the same store is now a hard error.
    assert main([*args, "--resume", "--strict-store"]) == 2
    assert "corrupt record" in capsys.readouterr().err


def test_campaign_chaos_command_passes_and_reports(tmp_path, capsys):
    assert main([
        "campaign", "chaos", "--runs", "2", "--workers", "2",
        "--seed", "2017", "--fault-seed", "2017",
        "--store", str(tmp_path / "chaos.jsonl"), "--quiet",
    ]) == 0
    out = capsys.readouterr().out
    assert "campaign chaos harness" in out
    assert "verdict" in out and "PASS" in out
