"""Chunked batch dispatch: round trips, boundary invariance, caches, resume.

The batching tentpole's contract has two halves:

* **transport is invisible** — however jobs are grouped into batches
  (singletons, worker-sized chunks, ragged tails) and however the sample
  column travels (inline pickle or shared memory), the folded per-job
  results are bit-identical to per-job ``run_job`` execution;
* **faults stay per-job** — a failure inside a chunk charges exactly the
  culprit row, folds the completed prefix, and leaves the untouched suffix
  requeueable, so resume and resilience semantics survive batching.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.batches import (
    JobContext,
    batch_jobs,
    pickle_context,
    run_batch,
)
from repro.campaign.campaign import Campaign
from repro.campaign.executor import ParallelExecutor, SerialExecutor
from repro.campaign.faults import FaultInjectedError, FaultPlan
from repro.campaign.jobs import run_job, seed_block_jobs
from repro.campaign.progress import NullProgress
from repro.campaign.store import ArtifactStore
from repro.platform.presets import cba_config, rp_config
from repro.workloads.base import AddressPattern, WorkloadSpec

# Module-level cache so hypothesis examples share one simulated reference.
_WORKLOAD = WorkloadSpec(
    name="batch-test",
    num_accesses=120,
    working_set_bytes=4 * 1024,
    mean_compute_gap=6.0,
    gap_variability=0.3,
    pattern=AddressPattern.SEQUENTIAL,
    write_fraction=0.2,
    hot_fraction=0.5,
    hot_region_bytes=1024,
)
_CACHE: dict[str, object] = {}


def _single_context_jobs():
    """Six jobs sharing one (workload, config, scenario) context."""
    if "jobs" not in _CACHE:
        jobs = seed_block_jobs(
            "rp", "max_contention", seed=7, num_runs=6,
            workload=_WORKLOAD, config=rp_config(), max_cycles=300_000,
        )
        _CACHE["jobs"] = jobs
        _CACHE["reference"] = {job.job_id: run_job(job) for job in jobs}
    return _CACHE["jobs"], _CACHE["reference"]


def _grid_jobs(workload):
    """Two contexts (RP and CBA), three jobs each."""
    jobs = []
    for label, config in (("rp", rp_config()), ("cba", cba_config())):
        jobs += seed_block_jobs(
            label, "max_contention", seed=7, num_runs=3,
            workload=workload, config=config, max_cycles=300_000,
        )
    return jobs


def _batch_of(jobs, attempt=1, **kwargs):
    key, blob = pickle_context(JobContext.from_job(jobs[0]))
    return batch_jobs([(job, attempt) for job in jobs], key, blob, **kwargs)


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def test_run_batch_round_trip_matches_run_job():
    """A folded batch reproduces every field per-job dispatch produced."""
    jobs, reference = _single_context_jobs()
    folded = run_batch(_batch_of(jobs[:3])).split()
    assert len(folded) == 3
    for result in folded:
        expected = reference[result.job_id]
        assert result.samples == expected.samples
        assert result.metrics == expected.metrics
        assert result.payloads == expected.payloads
        assert result.truncated_runs == expected.truncated_runs
        assert result.label == expected.label
        assert result.scenario == expected.scenario
        assert result.run_start == expected.run_start
        assert result.num_runs == expected.num_runs
        assert result.elapsed_seconds > 0.0


def test_shared_memory_transport_is_bit_identical():
    """Forcing the shm return path changes transport, not a single sample."""
    jobs, reference = _single_context_jobs()
    result = run_batch(_batch_of(jobs, shm_min_bytes=0))
    assert result.samples is None  # rode shared memory, not the pipe
    assert result.shm_name is not None
    folded = result.split()
    assert result.shm_name is None  # adopted, copied out and unlinked
    assert {r.job_id: r.samples for r in folded} == {
        job_id: ref.samples for job_id, ref in reference.items()
    }


def test_worker_context_cache_hits_after_first_batch():
    from repro.campaign import batches

    jobs, _ = _single_context_jobs()
    batches._CONTEXT_CACHE.clear()
    first = run_batch(_batch_of(jobs[:1]))
    second = run_batch(_batch_of(jobs[1:2]))
    assert not first.context_cache_hit
    assert second.context_cache_hit


# ----------------------------------------------------------------------
# Chunk boundaries never change samples
# ----------------------------------------------------------------------
@settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(data=st.data())
def test_chunk_boundaries_never_change_samples(data):
    """Any contiguous partition of the job list folds to the same samples."""
    jobs, reference = _single_context_jobs()
    key, blob = pickle_context(JobContext.from_job(jobs[0]))
    remaining = list(jobs)
    folded = []
    while remaining:
        size = data.draw(st.integers(1, len(remaining)))
        chunk, remaining = remaining[:size], remaining[size:]
        batch = batch_jobs([(job, 1) for job in chunk], key, blob)
        folded.extend(run_batch(batch).split())
    assert {r.job_id: r.samples for r in folded} == {
        job_id: ref.samples for job_id, ref in reference.items()
    }


@pytest.mark.parametrize("chunk_jobs", [1, 2, 4])
def test_pinned_pool_chunk_sizes_are_bit_identical(tiny_workload, chunk_jobs):
    """Through the real pool: singleton, worker-sized and ragged chunks all
    reproduce the serial samples (4 against 3-job contexts forces a tail)."""
    jobs = _grid_jobs(tiny_workload)
    serial = {r.job_id: r.samples for r in SerialExecutor().execute(jobs)}
    executor = ParallelExecutor(max_workers=2, chunk_jobs=chunk_jobs)
    parallel = {r.job_id: r.samples for r in executor.execute(jobs)}
    assert parallel == serial
    stats = executor.last_batch_stats
    assert stats["jobs_dispatched"] == len(jobs)
    assert 1 <= stats["max_chunk_jobs"] <= chunk_jobs


def test_adaptive_dispatch_reports_batch_stats(tiny_workload):
    jobs = _grid_jobs(tiny_workload)
    executor = ParallelExecutor(max_workers=2)
    results = list(executor.execute(jobs))
    assert len(results) == len(jobs)
    stats = executor.last_batch_stats
    assert stats["contexts"] == 2  # RP and CBA platform points
    assert stats["jobs_dispatched"] == len(jobs)
    assert stats["batches"] >= 2
    assert (
        stats["context_cache_hits"] + stats["context_cache_misses"]
        == stats["batches"]
    )


# ----------------------------------------------------------------------
# Faults at batch granularity
# ----------------------------------------------------------------------
def test_partial_batch_failure_folds_prefix_and_charges_culprit():
    jobs, reference = _single_context_jobs()
    plan = FaultPlan(fail_jobs=frozenset({jobs[1].job_id}))
    result = run_batch(_batch_of(jobs[:3]), plan)
    assert result.completed == 1
    assert result.failed_index == 1
    assert isinstance(result.failure_exception(), FaultInjectedError)
    (folded,) = result.split()
    assert folded.samples == reference[jobs[0].job_id].samples


# ----------------------------------------------------------------------
# Resume across chunk boundaries
# ----------------------------------------------------------------------
class _AbortAfter(NullProgress):
    """Kills the campaign after ``limit`` persisted jobs — mid-chunk, since
    results stream per job while chunks hold two."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.seen = 0

    def advance(self, label: str = "") -> None:
        self.seen += 1
        if self.seen >= self.limit:
            raise KeyboardInterrupt("injected mid-chunk kill")


def test_resume_after_mid_chunk_kill_is_duplicate_free_and_identical(
    tiny_workload, tmp_path
):
    """ISSUE acceptance: kill a chunked campaign partway, resume from the
    store, and the final store holds exactly one record per job with samples
    bit-identical to an uninterrupted serial run."""
    jobs = _grid_jobs(tiny_workload)
    serial = Campaign(executor=SerialExecutor()).run(jobs)

    store_path = tmp_path / "store.jsonl"
    interrupted = Campaign(
        executor=ParallelExecutor(max_workers=2, chunk_jobs=2),
        store=ArtifactStore(store_path),
        progress=_AbortAfter(3),
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(jobs)
    partial = ArtifactStore(store_path).load()
    assert 0 < len(partial) < len(jobs)  # died with work left to do

    resumed = Campaign(
        executor=ParallelExecutor(max_workers=2, chunk_jobs=2),
        store=ArtifactStore(store_path),
        resume=True,
    ).run(jobs)

    lines = [
        line for line in store_path.read_text().splitlines() if line.strip()
    ]
    assert len(lines) == len(jobs)  # no job was re-executed or re-appended
    assert {job_id: r.samples for job_id, r in resumed.items()} == {
        job_id: r.samples for job_id, r in serial.items()
    }
