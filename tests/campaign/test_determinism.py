"""Acceptance criterion: parallel campaigns reproduce serial results exactly."""

from __future__ import annotations

import numpy as np

from repro.campaign.campaign import Campaign
from repro.campaign.executor import ParallelExecutor
from repro.experiments.figure1 import run_figure1
from repro.experiments.mbpta_experiment import run_mbpta_experiment

FIGURE1_KWARGS = dict(benchmarks=["canrdr"], num_runs=2, access_scale=0.05, seed=2017)


def test_figure1_parallel_matches_serial_exactly():
    """`--jobs 4` must produce results identical to `--jobs 1`."""
    serial = run_figure1(campaign=Campaign(), **FIGURE1_KWARGS)
    parallel = run_figure1(
        campaign=Campaign(executor=ParallelExecutor(max_workers=4)),
        **FIGURE1_KWARGS,
    )
    assert parallel.mean_cycles == serial.mean_cycles
    assert parallel.slowdowns == serial.slowdowns
    for benchmark, runs in serial.runs.items():
        for label, record in runs.items():
            assert np.array_equal(parallel.runs[benchmark][label].samples, record.samples)


def test_mbpta_parallel_matches_serial_exactly():
    kwargs = dict(
        benchmark="canrdr", num_runs=20, operation_runs=2, access_scale=0.05, seed=7
    )
    serial = run_mbpta_experiment(campaign=Campaign(), **kwargs)
    parallel = run_mbpta_experiment(
        campaign=Campaign(executor=ParallelExecutor(max_workers=3)), **kwargs
    )
    assert np.array_equal(parallel.mbpta.samples, serial.mbpta.samples)
    assert np.array_equal(parallel.operation_samples, serial.operation_samples)
    assert parallel.pwcet_bound == serial.pwcet_bound
