"""Execution backends: serial/parallel interchangeability."""

from __future__ import annotations

import pytest

from repro.campaign.executor import (
    ParallelExecutor,
    SerialExecutor,
    create_executor,
)
from repro.campaign.jobs import seed_block_jobs
from repro.platform.presets import cba_config, rp_config
from repro.sim.errors import ConfigurationError


def _jobs(workload):
    jobs = []
    for label, config in (("rp", rp_config()), ("cba", cba_config())):
        jobs += seed_block_jobs(
            label, "max_contention", seed=7, num_runs=3,
            workload=workload, config=config, max_cycles=300_000,
        )
    return jobs


def test_parallel_results_are_bit_identical_to_serial(tiny_workload):
    """The determinism contract: the backend never affects the samples."""
    jobs = _jobs(tiny_workload)
    serial = {r.job_id: r.samples for r in SerialExecutor().execute(jobs)}
    parallel = {
        r.job_id: r.samples
        for r in ParallelExecutor(max_workers=2).execute(jobs)
    }
    assert parallel == serial


def test_parallel_execution_completes_every_job(tiny_workload):
    jobs = _jobs(tiny_workload)
    # Tiny in-flight bound exercises the submit/drain windowing logic.
    executor = ParallelExecutor(max_workers=2, max_in_flight=2)
    results = list(executor.execute(jobs))
    assert {r.job_id for r in results} == {j.job_id for j in jobs}


def test_parallel_executor_handles_empty_job_list():
    assert list(ParallelExecutor(max_workers=2).execute([])) == []


def test_create_executor_maps_jobs_flag():
    assert isinstance(create_executor(None), SerialExecutor)
    assert isinstance(create_executor(1), SerialExecutor)
    parallel = create_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.workers == 3
    per_cpu = create_executor(0)
    assert isinstance(per_cpu, ParallelExecutor)
    assert per_cpu.workers >= 1


def test_create_executor_rejects_negative_counts():
    with pytest.raises(ConfigurationError):
        create_executor(-2)
    with pytest.raises(ConfigurationError):
        ParallelExecutor(max_workers=0)
