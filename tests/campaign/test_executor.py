"""Execution backends: serial/parallel interchangeability and resilience."""

from __future__ import annotations

import pytest

from repro.campaign.executor import (
    ParallelExecutor,
    SerialExecutor,
    create_executor,
)
from repro.campaign.faults import FaultInjectedError, FaultPlan
from repro.campaign.jobs import seed_block_jobs
from repro.campaign.resilience import JobTimeoutError, RetryPolicy
from repro.platform.presets import cba_config, rp_config
from repro.sim.errors import ConfigurationError


def _jobs(workload):
    jobs = []
    for label, config in (("rp", rp_config()), ("cba", cba_config())):
        jobs += seed_block_jobs(
            label, "max_contention", seed=7, num_runs=3,
            workload=workload, config=config, max_cycles=300_000,
        )
    return jobs


def test_parallel_results_are_bit_identical_to_serial(tiny_workload):
    """The determinism contract: the backend never affects the samples."""
    jobs = _jobs(tiny_workload)
    serial = {r.job_id: r.samples for r in SerialExecutor().execute(jobs)}
    parallel = {
        r.job_id: r.samples
        for r in ParallelExecutor(max_workers=2).execute(jobs)
    }
    assert parallel == serial


def test_parallel_execution_completes_every_job(tiny_workload):
    jobs = _jobs(tiny_workload)
    # Tiny in-flight bound exercises the submit/drain windowing logic.
    executor = ParallelExecutor(max_workers=2, max_in_flight=2)
    results = list(executor.execute(jobs))
    assert {r.job_id for r in results} == {j.job_id for j in jobs}


def test_parallel_executor_handles_empty_job_list():
    assert list(ParallelExecutor(max_workers=2).execute([])) == []


def test_create_executor_maps_jobs_flag():
    assert isinstance(create_executor(None), SerialExecutor)
    assert isinstance(create_executor(1), SerialExecutor)
    parallel = create_executor(3)
    assert isinstance(parallel, ParallelExecutor)
    assert parallel.workers == 3
    per_cpu = create_executor(0)
    assert isinstance(per_cpu, ParallelExecutor)
    assert per_cpu.workers >= 1


def test_create_executor_rejects_negative_counts():
    with pytest.raises(ConfigurationError):
        create_executor(-2)
    with pytest.raises(ConfigurationError):
        ParallelExecutor(max_workers=0)
    with pytest.raises(ConfigurationError):
        ParallelExecutor(max_workers=2, job_timeout=0.0)


def test_create_executor_threads_resilience_flags_through():
    policy = RetryPolicy(max_attempts=4)
    executor = create_executor(2, retry_policy=policy, job_timeout=5.0)
    assert executor.retry_policy is policy
    assert executor.job_timeout == 5.0
    serial = create_executor(1, retry_policy=policy)
    assert serial.retry_policy is policy


# ----------------------------------------------------------------------
# Resilience: crashes, retries, timeouts, degradation
# ----------------------------------------------------------------------
def test_worker_crash_is_survived_bit_identically(tiny_workload):
    """One injected worker death: the pool is rebuilt, the lost jobs are
    resubmitted, and no sample changes."""
    jobs = _jobs(tiny_workload)
    serial = {r.job_id: r.samples for r in SerialExecutor().execute(jobs)}
    plan = FaultPlan.for_jobs(jobs, seed=3, crashes=1, failures=0, corrupt_lines=0)
    executor = ParallelExecutor(
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        fault_plan=plan,
    )
    results = {r.job_id: r.samples for r in executor.execute(jobs)}
    assert results == serial
    summary = executor.last_resilience
    assert summary.worker_crashes >= 1
    assert summary.pool_rebuilds >= 1
    assert not summary.failures and not summary.degraded


def test_transient_exception_is_retried_with_policy(tiny_workload):
    jobs = _jobs(tiny_workload)
    plan = FaultPlan.for_jobs(jobs, seed=3, crashes=0, failures=1, corrupt_lines=0)
    executor = ParallelExecutor(
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        fault_plan=plan,
    )
    results = list(executor.execute(jobs))
    assert {r.job_id for r in results} == {j.job_id for j in jobs}
    summary = executor.last_resilience
    assert summary.retries == 1
    assert summary.events[0].kind == "exception"


def test_exception_without_policy_aborts_and_cancels_in_flight(tiny_workload):
    """Satellite: the pre-resilience fail-fast contract now also cancels the
    other in-flight futures so an aborting campaign never waits on them."""
    jobs = _jobs(tiny_workload)
    # Fail the first-submitted job so plenty of futures are still queued.
    plan = FaultPlan(fail_jobs=frozenset({jobs[0].job_id}))
    executor = ParallelExecutor(max_workers=1, fault_plan=plan)
    with pytest.raises(FaultInjectedError):
        list(executor.execute(jobs))
    assert executor.last_cancelled >= 1
    assert executor.last_resilience.failures[0].fatal


def test_poison_crash_job_is_quarantined_not_fatal(tiny_workload):
    """A job that kills its worker on every attempt costs its own samples,
    not the campaign."""
    jobs = _jobs(tiny_workload)
    poison = jobs[0].job_id
    plan = FaultPlan(crash_jobs=frozenset({poison}), max_faulty_attempts=99)
    executor = ParallelExecutor(
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.0),
        fault_plan=plan,
    )
    results = {r.job_id for r in executor.execute(jobs)}
    assert results == {j.job_id for j in jobs} - {poison}
    summary = executor.last_resilience
    assert summary.failures
    assert summary.failures[0].job_id == poison
    assert summary.failures[0].kind == "worker_crash"
    assert summary.failures[0].fatal


def test_hung_job_is_killed_and_retried(tiny_workload):
    jobs = _jobs(tiny_workload)
    hung = jobs[0].job_id
    plan = FaultPlan(hang_jobs=frozenset({hung}), hang_seconds=60.0)
    executor = ParallelExecutor(
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        job_timeout=0.5,
        fault_plan=plan,
    )
    results = {r.job_id for r in executor.execute(jobs)}
    assert results == {j.job_id for j in jobs}  # the retry ran clean
    summary = executor.last_resilience
    assert summary.timeouts >= 1
    assert summary.pool_rebuilds >= 1


def test_hung_job_without_policy_raises_timeout_error(tiny_workload):
    jobs = _jobs(tiny_workload)[:1]
    plan = FaultPlan(
        hang_jobs=frozenset({jobs[0].job_id}),
        hang_seconds=60.0,
        max_faulty_attempts=99,
    )
    executor = ParallelExecutor(max_workers=1, job_timeout=0.3, fault_plan=plan)
    with pytest.raises(JobTimeoutError):
        list(executor.execute(jobs))


def test_repeated_pool_failures_degrade_to_serial(tiny_workload):
    """When the pool cannot be kept alive, the endgame runs in-process — and
    still recovers the job once its faulty attempts are spent."""
    jobs = _jobs(tiny_workload)[:1]
    serial = {r.job_id: r.samples for r in SerialExecutor().execute(jobs)}
    plan = FaultPlan(crash_jobs=frozenset({jobs[0].job_id}), max_faulty_attempts=4)
    executor = ParallelExecutor(
        max_workers=1,
        retry_policy=RetryPolicy(
            max_attempts=10, base_delay=0.0, max_pool_rebuilds=1
        ),
        fault_plan=plan,
    )
    results = {r.job_id: r.samples for r in executor.execute(jobs)}
    assert results == serial
    summary = executor.last_resilience
    assert summary.degraded
    assert summary.worker_crashes >= 2
    assert not summary.failures
