"""Retry policies, failure records, and the in-process retry driver."""

from __future__ import annotations

import pytest

from repro.campaign.faults import FaultInjectedCrash, FaultInjectedError, FaultPlan
from repro.campaign.jobs import run_job, seed_block_jobs
from repro.campaign.resilience import (
    JobFailure,
    ResilienceSummary,
    RetryPolicy,
    derived_unit,
    execute_with_retries,
)
from repro.platform.presets import rp_config
from repro.sim.errors import ConfigurationError


def _job(workload):
    (job,) = seed_block_jobs(
        "tiny/RP", "max_contention", seed=7, num_runs=1,
        workload=workload, config=rp_config(), max_cycles=300_000,
    )
    return job


# ----------------------------------------------------------------------
# derived_unit
# ----------------------------------------------------------------------
def test_derived_unit_is_deterministic_and_in_range():
    draws = [derived_unit(7, "job", attempt) for attempt in range(50)]
    assert draws == [derived_unit(7, "job", attempt) for attempt in range(50)]
    assert all(0.0 <= draw < 1.0 for draw in draws)
    assert len(set(draws)) == 50  # parts actually vary the draw


def test_derived_unit_depends_on_the_seed():
    assert derived_unit(1, "x") != derived_unit(2, "x")


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_validates_its_fields():
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ConfigurationError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ConfigurationError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ConfigurationError):
        RetryPolicy(max_pool_rebuilds=-1)


def test_should_retry_counts_total_attempts():
    policy = RetryPolicy(max_attempts=3)
    assert policy.should_retry(1)
    assert policy.should_retry(2)
    assert not policy.should_retry(3)


def test_backoff_is_exponential_and_capped_without_jitter():
    policy = RetryPolicy(base_delay=0.1, max_delay=0.5, jitter=0.0, max_attempts=10)
    delays = [policy.delay("job", attempt) for attempt in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jittered_backoff_is_deterministic_and_never_exceeds_the_cap():
    policy = RetryPolicy(base_delay=0.1, max_delay=2.0, jitter=0.5, seed=42)
    first = [policy.delay("job", attempt) for attempt in range(1, 6)]
    again = [policy.delay("job", attempt) for attempt in range(1, 6)]
    assert first == again
    for attempt, delay in enumerate(first, start=1):
        cap = min(0.1 * 2 ** (attempt - 1), 2.0)
        assert cap * 0.5 <= delay <= cap
    # A different seed reschedules (deterministically) differently.
    assert first != [
        RetryPolicy(base_delay=0.1, jitter=0.5, seed=43).delay("job", a)
        for a in range(1, 6)
    ]


# ----------------------------------------------------------------------
# JobFailure / ResilienceSummary
# ----------------------------------------------------------------------
def test_job_failure_serialises_every_field():
    failure = JobFailure(
        job_id="abc", label="tiny/RP", scenario="max_contention",
        attempt=2, kind="timeout", message="too slow", fatal=True,
    )
    assert failure.to_dict() == {
        "job_id": "abc", "label": "tiny/RP", "scenario": "max_contention",
        "attempt": 2, "kind": "timeout", "message": "too slow", "fatal": True,
    }


def test_resilience_summary_clean_flag_and_accounting():
    summary = ResilienceSummary()
    assert summary.clean
    failure = JobFailure("a", "l", "s", 1, "exception")
    summary.record_retry(failure)
    assert summary.retries == 1 and summary.events == [failure]
    summary.record_quarantine(failure)
    assert summary.failures == [failure]
    assert not summary.clean
    as_dict = summary.as_dict()
    assert as_dict["retries"] == 1
    assert as_dict["events"] == [failure.to_dict()]


# ----------------------------------------------------------------------
# execute_with_retries
# ----------------------------------------------------------------------
def test_retry_driver_recovers_transient_failures_bit_identically(tiny_workload):
    job = _job(tiny_workload)
    plan = FaultPlan(fail_jobs=frozenset({job.job_id}))
    summary = ResilienceSummary()
    slept = []
    result = execute_with_retries(
        job, RetryPolicy(max_attempts=3, base_delay=0.01), plan, summary,
        sleep=slept.append,
    )
    assert result is not None
    assert result.samples == run_job(job).samples  # purity: retry changes nothing
    assert summary.retries == 1 and not summary.failures
    assert summary.events[0].kind == "exception"
    assert slept and all(delay > 0 for delay in slept)


def test_retry_driver_surfaces_injected_crashes_as_worker_crashes(tiny_workload):
    job = _job(tiny_workload)
    plan = FaultPlan(crash_jobs=frozenset({job.job_id}))
    summary = ResilienceSummary()
    result = execute_with_retries(
        job, RetryPolicy(max_attempts=2, base_delay=0.0), plan, summary,
        sleep=lambda _: None,
    )
    assert result is not None
    assert summary.events[0].kind == "worker_crash"


def test_retry_driver_without_policy_keeps_the_fail_fast_contract(tiny_workload):
    job = _job(tiny_workload)
    plan = FaultPlan(fail_jobs=frozenset({job.job_id}))
    summary = ResilienceSummary()
    with pytest.raises(FaultInjectedError):
        execute_with_retries(job, None, plan, summary)
    assert summary.failures and summary.failures[0].fatal


def test_retry_driver_quarantines_poison_jobs(tiny_workload):
    job = _job(tiny_workload)
    # Faults on every attempt: the job is poison, not transient.
    plan = FaultPlan(crash_jobs=frozenset({job.job_id}), max_faulty_attempts=99)
    summary = ResilienceSummary()
    result = execute_with_retries(
        job, RetryPolicy(max_attempts=3, base_delay=0.0), plan, summary,
        sleep=lambda _: None,
    )
    assert result is None
    assert summary.retries == 2  # attempts 1 and 2 retried, 3rd quarantined
    assert summary.failures[0].fatal
    assert summary.failures[0].kind == "worker_crash"


def test_retry_driver_reports_retry_and_quarantine_lines(tiny_workload):
    class Recorder:
        def __init__(self):
            self.calls = []

        def retry(self, label, attempt, max_attempts, kind, delay):
            self.calls.append(("retry", label, attempt, kind))

        def quarantine(self, label, attempt, kind):
            self.calls.append(("quarantine", label, attempt, kind))

    job = _job(tiny_workload)
    plan = FaultPlan(fail_jobs=frozenset({job.job_id}), max_faulty_attempts=99)
    reporter = Recorder()
    execute_with_retries(
        job, RetryPolicy(max_attempts=2, base_delay=0.0), plan,
        ResilienceSummary(), reporter, sleep=lambda _: None,
    )
    assert reporter.calls == [
        ("retry", job.label, 2, "exception"),
        ("quarantine", job.label, 2, "exception"),
    ]


def test_fault_injected_crash_is_a_fault_injected_error():
    assert issubclass(FaultInjectedCrash, FaultInjectedError)
