"""End-to-end fault-tolerance acceptance tests and the zero-cost guard.

Two complementary checks, mirroring ``tests/obs/test_overhead.py``:

* **chaos** — a seeded fault plan injecting at least one worker crash, one
  transient failure and one corrupt store line must leave the campaign
  complete, the corruption quarantined, and every sample bit-identical to a
  clean serial run;
* **zero-cost** — with no retry policy, fault plan or timeout configured,
  dispatch submits the plain ``run_job`` (production paths never branch on
  faults) and store records differ from the pre-resilience encoding only by
  the mandated ``schema``/``crc`` fields.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.campaign import Campaign, aggregate_by_label
from repro.campaign.executor import ParallelExecutor, SerialExecutor
from repro.campaign.faults import FaultPlan, run_chaos
from repro.campaign.jobs import run_job, seed_block_jobs
from repro.campaign.resilience import RetryPolicy
from repro.campaign.store import ArtifactStore
from repro.platform.presets import cba_config, rp_config
from repro.sim.errors import ConfigurationError
from repro.workloads.base import AddressPattern, WorkloadSpec

# Module-level (not a function-scoped fixture) so hypothesis examples can
# share the jobs and the serial reference without re-simulating them.
_WORKLOAD = WorkloadSpec(
    name="chaos-test",
    num_accesses=120,
    working_set_bytes=4 * 1024,
    mean_compute_gap=6.0,
    gap_variability=0.3,
    pattern=AddressPattern.SEQUENTIAL,
    write_fraction=0.2,
    hot_fraction=0.5,
    hot_region_bytes=1024,
)
_JOBS = None
_REFERENCE = None


def _jobs_and_reference():
    global _JOBS, _REFERENCE
    if _JOBS is None:
        jobs = []
        for label, config in (("rp", rp_config()), ("cba", cba_config())):
            jobs += seed_block_jobs(
                label, "max_contention", seed=7, num_runs=3,
                workload=_WORKLOAD, config=config, max_cycles=300_000,
            )
        _JOBS = jobs
        _REFERENCE = {job.job_id: run_job(job).samples for job in jobs}
    return _JOBS, _REFERENCE


# ----------------------------------------------------------------------
# The acceptance criterion
# ----------------------------------------------------------------------
def test_chaos_campaign_survives_crash_failure_and_corruption(tmp_path):
    """ISSUE acceptance: >=1 worker crash, >=1 transient failure and >=1
    corrupt store line, all injected from one seeded plan — the campaign
    completes, the bad line quarantines, and the recovered samples are
    bit-identical to a clean serial run."""
    report = run_chaos(
        runs_per_label=3,
        workers=2,
        crashes=1,
        failures=1,
        corrupt_lines=1,
        retries=2,
        store_path=tmp_path / "chaos.jsonl",
    )
    assert report.injected["crash"] >= 1
    assert report.injected["fail"] >= 1
    assert report.injected_corrupt_lines >= 1
    assert report.quarantined_lines >= report.injected_corrupt_lines
    assert report.recovered_results == report.jobs
    assert report.samples_identical
    assert not report.campaign.failures  # nothing quarantined as poison
    assert report.campaign.worker_crashes >= 1
    assert report.campaign.pool_rebuilds >= 1
    assert report.campaign.retries >= 1
    assert report.passed
    summary = report.summary()
    assert summary["verdict"] == "PASS"


def test_chaos_requires_a_timeout_when_hanging_jobs():
    try:
        run_chaos(hangs=1, job_timeout=None)
    except ConfigurationError as error:
        assert "job-timeout" in str(error)
    else:  # pragma: no cover - the guard must fire
        raise AssertionError("hangs without a timeout should be rejected")


# ----------------------------------------------------------------------
# Hypothesis: recovered-pool results stay bit-identical across fault seeds
# ----------------------------------------------------------------------
@settings(
    max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
@given(fault_seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_recovered_pool_is_bit_identical_to_serial(fault_seed):
    """Whatever jobs a seeded plan crashes or fails, the surviving parallel
    executor hands back exactly the serial samples."""
    jobs, reference = _jobs_and_reference()
    plan = FaultPlan.for_jobs(
        jobs, seed=fault_seed, crashes=1, failures=1, corrupt_lines=0
    )
    executor = ParallelExecutor(
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0, seed=fault_seed),
        fault_plan=plan,
    )
    results = {result.job_id: result.samples for result in executor.execute(jobs)}
    assert results == reference
    assert executor.last_resilience.worker_crashes >= 1
    assert not executor.last_resilience.failures


# ----------------------------------------------------------------------
# Zero-cost when disabled
# ----------------------------------------------------------------------
def test_default_dispatch_runs_the_plain_run_job(monkeypatch):
    """Structural guard: without a fault plan the batch worker loop runs
    ``run_job`` itself and never consults the fault wrapper — production
    dispatch carries no fault branch."""
    import repro.campaign.faults as faults_mod
    from repro.campaign.batches import JobContext, batch_jobs, pickle_context, run_batch

    jobs, reference = _jobs_and_reference()
    key, blob = pickle_context(JobContext.from_job(jobs[0]))
    batch = batch_jobs([(jobs[0], 1)], key, blob)

    def forbidden(*args, **kwargs):  # pragma: no cover - the guard must hold
        raise AssertionError("fault wrapper used on the production path")

    monkeypatch.setattr(faults_mod, "run_job_with_faults", forbidden)
    result = run_batch(batch, None)
    (folded,) = result.split()
    assert folded.samples == reference[jobs[0].job_id]

    # And with a plan configured, the wrapper *is* the per-job entry point.
    plan = FaultPlan(fail_jobs=frozenset({jobs[0].job_id}))
    calls = []

    def recording(job, attempt, plan_arg, **kwargs):
        calls.append((job.job_id, attempt, plan_arg))
        return run_job(job)

    monkeypatch.setattr(faults_mod, "run_job_with_faults", recording)
    run_batch(batch, plan)
    assert calls == [(jobs[0].job_id, 1, plan)]


def test_serial_default_path_is_the_bare_run_job_loop(monkeypatch):
    """With no profiler, policy or plan the serial executor never consults
    the resilience driver at all."""
    jobs, reference = _jobs_and_reference()

    def forbidden(*args, **kwargs):  # pragma: no cover - the guard must hold
        raise AssertionError("resilience driver used on the hot path")

    monkeypatch.setattr(
        "repro.campaign.executor.execute_with_retries", forbidden
    )
    executor = SerialExecutor()
    results = {result.job_id: result.samples for result in executor.execute(jobs)}
    assert results == reference
    assert executor.last_resilience.clean


def test_clean_runs_report_clean_resilience(tmp_path):
    jobs, _ = _jobs_and_reference()
    campaign = Campaign(
        executor=ParallelExecutor(max_workers=2),
        store=ArtifactStore(tmp_path / "store.jsonl"),
    )
    campaign.run(jobs)
    report = campaign.last_report
    assert report.clean
    assert report.retries == 0
    assert report.worker_crashes == 0
    assert not report.degraded
    assert report.quarantined_store_lines == 0


def test_store_records_differ_from_v1_only_by_schema_and_crc(tmp_path):
    """The payload encoding is untouched by the hardening: stripping the two
    mandated fields yields byte-for-byte the pre-resilience v1 line."""
    jobs, _ = _jobs_and_reference()
    result = run_job(jobs[0])
    path = tmp_path / "store.jsonl"
    ArtifactStore(path).put(result)

    (line,) = path.read_text().splitlines()
    record = json.loads(line)
    assert set(record) - set(result.to_dict()) == {"schema", "crc"}
    record.pop("schema")
    record.pop("crc")
    v1_line = json.dumps({key: record[key] for key in sorted(record)})
    legacy = json.dumps(
        {key: value for key, value in sorted(result.to_dict().items())}
    )
    assert v1_line == legacy


def test_quiet_chaos_harness_emits_nothing(tmp_path, capfd):
    """--quiet must silence every reporter line — progress, retry and
    degrade notices included — even while faults are being survived."""
    report = run_chaos(
        runs_per_label=2,
        workers=2,
        crashes=1,
        failures=1,
        corrupt_lines=1,
        retries=2,
        store_path=tmp_path / "chaos.jsonl",
        quiet=True,
    )
    assert report.passed
    out, err = capfd.readouterr()
    assert out == ""
    assert err == ""
