"""Campaign orchestration: dedup, resume, aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign.campaign import Campaign, aggregate_by_label
from repro.campaign.executor import SerialExecutor
from repro.campaign.jobs import run_job, seed_block_jobs
from repro.campaign.store import ArtifactStore
from repro.experiments.figure1 import run_figure1
from repro.platform.presets import rp_config
from repro.sim.errors import ConfigurationError


class CountingExecutor(SerialExecutor):
    """Serial executor that records which jobs it actually ran."""

    def __init__(self) -> None:
        self.executed: list[str] = []

    def execute(self, jobs):
        for job in jobs:
            self.executed.append(job.job_id)
            yield run_job(job)


def _jobs(workload, label="tiny", num_runs=3):
    return seed_block_jobs(
        label, "isolation", seed=5, num_runs=num_runs,
        workload=workload, config=rp_config(), max_cycles=300_000,
    )


def test_duplicate_jobs_run_once_and_share_results(tiny_workload):
    jobs = _jobs(tiny_workload, label="first")
    relabelled = [job.with_updates(label="second") for job in jobs]
    executor = CountingExecutor()
    campaign = Campaign(executor=executor)

    results = campaign.run(jobs + relabelled)

    assert len(executor.executed) == len(jobs)
    report = campaign.last_report
    assert report.deduplicated_jobs == len(jobs)
    agg = aggregate_by_label(jobs + relabelled, results)
    assert np.array_equal(agg["first"].samples, agg["second"].samples)


def test_resume_skips_completed_jobs(tiny_workload, tmp_path):
    path = tmp_path / "store.jsonl"
    jobs = _jobs(tiny_workload)
    first = Campaign(store=ArtifactStore(path))
    baseline = aggregate_by_label(jobs, first.run(jobs))["tiny"].samples

    executor = CountingExecutor()
    resumed = Campaign(
        executor=executor, store=ArtifactStore(path), resume=True
    )
    results = resumed.run(jobs)

    assert executor.executed == []
    assert resumed.last_report.all_reused
    assert np.array_equal(aggregate_by_label(jobs, results)["tiny"].samples, baseline)


def test_resume_runs_only_the_missing_jobs(tiny_workload, tmp_path):
    path = tmp_path / "store.jsonl"
    jobs = _jobs(tiny_workload, num_runs=4)
    Campaign(store=ArtifactStore(path)).run(jobs[:2])

    executor = CountingExecutor()
    campaign = Campaign(executor=executor, store=ArtifactStore(path), resume=True)
    campaign.run(jobs)

    assert executor.executed == [job.job_id for job in jobs[2:]]
    assert campaign.last_report.reused_jobs == 2
    assert campaign.last_report.executed_jobs == 2


def test_store_without_resume_reexecutes_but_persists(tiny_workload, tmp_path):
    path = tmp_path / "store.jsonl"
    jobs = _jobs(tiny_workload)
    Campaign(store=ArtifactStore(path)).run(jobs)

    executor = CountingExecutor()
    Campaign(executor=executor, store=ArtifactStore(path), resume=False).run(jobs)
    assert len(executor.executed) == len(jobs)


def test_resume_requires_a_store():
    with pytest.raises(ConfigurationError, match="store"):
        Campaign(resume=True)


def test_aggregate_reports_missing_results(tiny_workload):
    jobs = _jobs(tiny_workload)
    with pytest.raises(ConfigurationError, match="no result"):
        aggregate_by_label(jobs, {})


def test_aggregate_rejects_truncated_runs_by_default(tiny_workload):
    """A truncated run has no execution time; folding its 0-cycle sample into
    statistics must be an explicit opt-in, never a silent default."""
    jobs = [
        job.with_updates(max_cycles=50) for job in _jobs(tiny_workload, num_runs=2)
    ]
    results = Campaign().run(jobs)
    with pytest.raises(ConfigurationError, match="cycle budget"):
        aggregate_by_label(jobs, results)
    agg = aggregate_by_label(jobs, results, allow_truncated=True)
    assert agg["tiny"].truncated_runs == 2


def test_experiments_fail_loudly_when_runs_truncate():
    """Pre-campaign behaviour restored: an undersized cycle budget is an
    error with actionable advice, not a silently meaningless table."""
    with pytest.raises(ConfigurationError, match="max_cycles"):
        run_figure1(
            benchmarks=["canrdr"], num_runs=1, access_scale=0.05, max_cycles=500
        )


def test_killed_campaign_with_torn_tail_resumes_only_missing_jobs(
    tiny_workload, tmp_path
):
    """A campaign killed mid-append leaves a truncated trailing line; the
    resumed campaign silently drops it and re-runs only the missing jobs."""
    path = tmp_path / "store.jsonl"
    jobs = _jobs(tiny_workload, num_runs=4)
    Campaign(store=ArtifactStore(path)).run(jobs[:2])
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"job_id": "torn", "samples": [12')  # the kill point

    executor = CountingExecutor()
    campaign = Campaign(executor=executor, store=ArtifactStore(path), resume=True)
    results = campaign.run(jobs)

    assert executor.executed == [job.job_id for job in jobs[2:]]
    assert campaign.last_report.reused_jobs == 2
    # A torn tail is expected crash damage, not corruption to quarantine.
    assert campaign.last_report.quarantined_store_lines == 0
    assert set(results) == {job.job_id for job in jobs}


def test_report_carries_resilience_accounting(tiny_workload, tmp_path):
    from repro.campaign.executor import ParallelExecutor
    from repro.campaign.faults import FaultPlan
    from repro.campaign.resilience import RetryPolicy

    jobs = _jobs(tiny_workload)
    plan = FaultPlan(fail_jobs=frozenset({jobs[0].job_id}))
    campaign = Campaign(
        executor=ParallelExecutor(max_workers=2),
        store=ArtifactStore(tmp_path / "store.jsonl"),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        fault_plan=plan,
    )
    results = campaign.run(jobs)
    report = campaign.last_report
    assert set(results) == {job.job_id for job in jobs}
    assert report.retries == 1
    assert not report.clean
    assert report.failures == ()


def test_resilience_counters_reach_the_metrics_registry(tiny_workload):
    from repro.campaign.campaign import CampaignReport

    jobs = _jobs(tiny_workload, num_runs=1)
    results = Campaign().run(jobs)
    report = CampaignReport(
        total_jobs=1, executed_jobs=1, reused_jobs=0, deduplicated_jobs=0,
        truncated_runs=0, retries=3, worker_crashes=1, pool_rebuilds=1,
        timeouts=2, degraded=True, quarantined_store_lines=4,
    )
    registry = Campaign._metrics_registry(results, report)
    series = {
        row["name"]: row["value"]
        for row in registry.snapshot()
        if row["type"] == "counter" and not row["labels"]
    }
    assert series["campaign.retries"] == 3
    assert series["campaign.worker_crashes"] == 1
    assert series["campaign.job_timeouts"] == 2
    assert series["campaign.degradations"] == 1
    assert series["campaign.quarantined_store_lines"] == 4


def test_store_lock_is_held_for_the_whole_run(tiny_workload, tmp_path):
    """A second campaign pointed at a running campaign's store fails fast
    instead of interleaving appends."""
    path = tmp_path / "store.jsonl"
    observed: list[bool] = []

    class ProbingExecutor(CountingExecutor):
        def execute(self, jobs):
            intruder = ArtifactStore(path)
            try:
                intruder.acquire_lock()
            except ConfigurationError:
                observed.append(True)
            else:  # pragma: no cover - the lock must be held
                intruder.release_lock()
                observed.append(False)
            yield from super().execute(jobs)

    campaign = Campaign(executor=ProbingExecutor(), store=ArtifactStore(path))
    campaign.run(_jobs(tiny_workload, num_runs=1))
    assert observed == [True]


def test_figure1_resumes_from_a_prior_campaign_store(tiny_workload, tmp_path):
    """The acceptance-criterion flow, at API level: a second figure1 run
    against the same store re-runs nothing and reproduces the same table."""
    path = tmp_path / "figure1.jsonl"
    kwargs = dict(benchmarks=["canrdr"], num_runs=1, access_scale=0.05, seed=2017)

    first = Campaign(store=ArtifactStore(path))
    baseline = run_figure1(campaign=first, **kwargs)

    executor = CountingExecutor()
    resumed = Campaign(executor=executor, store=ArtifactStore(path), resume=True)
    again = run_figure1(campaign=resumed, **kwargs)

    assert executor.executed == []
    assert resumed.last_report.all_reused
    assert again.slowdowns == baseline.slowdowns
    assert again.mean_cycles == baseline.mean_cycles
