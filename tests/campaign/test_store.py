"""Artifact-store persistence."""

from __future__ import annotations

import json

import pytest

from repro.campaign.jobs import JobResult
from repro.campaign.store import ArtifactStore
from repro.sim.errors import ConfigurationError


def _result(job_id: str, samples=(1.0, 2.0), **overrides) -> JobResult:
    fields = dict(
        job_id=job_id,
        label="tiny/RP-CON",
        scenario="max_contention",
        run_start=0,
        num_runs=len(samples),
        samples=tuple(samples),
        metrics=tuple({"total_cycles": s * 10} for s in samples),
        truncated_runs=0,
        payloads=(None,) * len(samples),
        elapsed_seconds=0.25,
    )
    fields.update(overrides)
    return JobResult(**fields)


def test_round_trip_preserves_every_field(tmp_path):
    path = tmp_path / "store.jsonl"
    original = _result("abc123", payloads=({"rows": [1, 2]}, None))
    ArtifactStore(path).put(original)

    reloaded = ArtifactStore(path).get("abc123")
    assert reloaded == original


def test_get_unknown_id_returns_none(tmp_path):
    store = ArtifactStore(tmp_path / "store.jsonl")
    assert store.get("missing") is None
    assert "missing" not in store


def test_last_record_wins_on_duplicate_ids(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc", samples=(1.0,)))
    store.put(_result("abc", samples=(9.0,)))

    reloaded = ArtifactStore(path)
    assert len(reloaded) == 1
    assert reloaded.get("abc").samples == (9.0,)


def test_partially_written_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"job_id": "def", "samples": [1.0')  # crash mid-append

    reloaded = ArtifactStore(path)
    assert len(reloaded) == 1
    assert reloaded.get("abc") is not None


def test_corruption_before_the_end_is_quarantined_by_default(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    record = path.read_text()
    path.write_text("not json at all\n" + record)

    reloaded = ArtifactStore(path)
    assert reloaded.get("abc") is not None
    assert reloaded.quarantined_lines == 1
    entries = [
        json.loads(line) for line in reloaded.quarantine_path.read_text().splitlines()
    ]
    assert entries == [
        {"line_number": 1, "reason": "invalid JSON", "line": "not json at all"}
    ]


def test_corruption_before_the_end_raises_in_strict_mode(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    record = path.read_text()
    path.write_text("not json at all\n" + record)

    with pytest.raises(ConfigurationError, match="corrupt"):
        ArtifactStore(path, strict=True).load()
    assert not ArtifactStore(path, strict=True).quarantine_path.exists()


@pytest.mark.parametrize("strict", [False, True])
def test_trailing_truncation_is_recovered_in_both_strict_modes(tmp_path, strict):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"job_id": "def", "samples": [1.0')  # crash mid-append

    reloaded = ArtifactStore(path, strict=strict)
    assert len(reloaded) == 1
    assert reloaded.quarantined_lines == 0
    assert not reloaded.quarantine_path.exists()


def test_trailing_truncation_after_earlier_corruption_is_recovered(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    store.put(_result("def"))
    lines = path.read_text().splitlines()
    path.write_text(
        "\n".join(["garbage line", *lines]) + "\n" + '{"job_id": "ghi", "sam'
    )

    reloaded = ArtifactStore(path)
    assert set(reloaded.load()) == {"abc", "def"}
    assert reloaded.quarantined_lines == 1  # only the garbage, not the tail


def test_crc_mismatch_is_quarantined_and_strict_raises(tmp_path):
    path = tmp_path / "store.jsonl"
    ArtifactStore(path).put(_result("abc", samples=(1.0, 2.0)))
    # Flip a sample value without recomputing the checksum.
    tampered = path.read_text().replace("1.0", "7.0")
    assert tampered != path.read_text()
    path.write_text(tampered)

    reloaded = ArtifactStore(path)
    assert reloaded.get("abc") is None
    assert reloaded.quarantined_lines == 1
    entry = json.loads(reloaded.quarantine_path.read_text())
    assert "CRC mismatch" in entry["reason"]

    with pytest.raises(ConfigurationError, match="CRC mismatch"):
        ArtifactStore(path, strict=True).load()


def test_v1_record_without_checksum_is_still_readable(tmp_path):
    path = tmp_path / "store.jsonl"
    original = _result("abc", payloads=({"rows": [1, 2]}, None))
    record = {"schema": 1, **original.to_dict()}
    path.write_text(json.dumps(record) + "\n")

    reloaded = ArtifactStore(path)
    assert reloaded.get("abc") == original
    assert reloaded.quarantined_lines == 0


def test_records_are_written_at_schema_2_with_crc(tmp_path):
    import zlib

    path = tmp_path / "store.jsonl"
    ArtifactStore(path).put(_result("abc"))

    record = json.loads(path.read_text())
    assert record["schema"] == 2
    crc = record.pop("crc")
    canonical = json.dumps({key: record[key] for key in sorted(record)})
    assert crc == zlib.crc32(canonical.encode("utf-8"))


def test_newer_schema_is_rejected(tmp_path):
    path = tmp_path / "store.jsonl"
    record = {"schema": 999, **_result("abc").to_dict()}
    path.write_text(json.dumps(record) + "\n")

    with pytest.raises(ConfigurationError, match="schema"):
        ArtifactStore(path).load()


def test_non_integer_schema_is_a_configuration_error(tmp_path):
    path = tmp_path / "store.jsonl"
    record = {**_result("abc").to_dict(), "schema": "two"}
    path.write_text(json.dumps(record) + "\n")

    with pytest.raises(ConfigurationError, match="non-integer schema"):
        ArtifactStore(path).load()


def test_lock_conflict_is_a_configuration_error(tmp_path):
    pytest.importorskip("fcntl")
    path = tmp_path / "store.jsonl"
    first = ArtifactStore(path)
    second = ArtifactStore(path)
    first.acquire_lock()
    try:
        with pytest.raises(ConfigurationError, match="store lock"):
            second.acquire_lock()
    finally:
        first.release_lock()
    # Released: the second instance can now take (and release) it.
    with second.locked():
        pass


def test_lock_is_reentrant_within_one_instance(tmp_path):
    pytest.importorskip("fcntl")
    store = ArtifactStore(tmp_path / "store.jsonl")
    with store.locked():
        store.put(_result("abc"))  # put() re-acquires the held lock
    assert ArtifactStore(store.path).get("abc") is not None


def test_compact_drops_superseded_records(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc", samples=(1.0,)))
    store.put(_result("abc", samples=(2.0,)))
    store.put(_result("def", samples=(3.0,)))

    dropped = ArtifactStore(path).compact()
    assert dropped == 1
    reloaded = ArtifactStore(path)
    assert len(reloaded) == 2
    assert reloaded.get("abc").samples == (2.0,)


def test_compact_upgrades_v1_records_to_checksummed_v2(tmp_path):
    path = tmp_path / "store.jsonl"
    original = _result("abc")
    path.write_text(json.dumps({"schema": 1, **original.to_dict()}) + "\n")

    ArtifactStore(path).compact()
    record = json.loads(path.read_text())
    assert record["schema"] == 2
    assert "crc" in record
    assert ArtifactStore(path).get("abc") == original
