"""Artifact-store persistence."""

from __future__ import annotations

import json

import pytest

from repro.campaign.jobs import JobResult
from repro.campaign.store import ArtifactStore
from repro.sim.errors import ConfigurationError


def _result(job_id: str, samples=(1.0, 2.0), **overrides) -> JobResult:
    fields = dict(
        job_id=job_id,
        label="tiny/RP-CON",
        scenario="max_contention",
        run_start=0,
        num_runs=len(samples),
        samples=tuple(samples),
        metrics=tuple({"total_cycles": s * 10} for s in samples),
        truncated_runs=0,
        payloads=(None,) * len(samples),
        elapsed_seconds=0.25,
    )
    fields.update(overrides)
    return JobResult(**fields)


def test_round_trip_preserves_every_field(tmp_path):
    path = tmp_path / "store.jsonl"
    original = _result("abc123", payloads=({"rows": [1, 2]}, None))
    ArtifactStore(path).put(original)

    reloaded = ArtifactStore(path).get("abc123")
    assert reloaded == original


def test_get_unknown_id_returns_none(tmp_path):
    store = ArtifactStore(tmp_path / "store.jsonl")
    assert store.get("missing") is None
    assert "missing" not in store


def test_last_record_wins_on_duplicate_ids(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc", samples=(1.0,)))
    store.put(_result("abc", samples=(9.0,)))

    reloaded = ArtifactStore(path)
    assert len(reloaded) == 1
    assert reloaded.get("abc").samples == (9.0,)


def test_partially_written_trailing_line_is_tolerated(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write('{"job_id": "def", "samples": [1.0')  # crash mid-append

    reloaded = ArtifactStore(path)
    assert len(reloaded) == 1
    assert reloaded.get("abc") is not None


def test_corruption_before_the_end_is_an_error(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc"))
    record = path.read_text()
    path.write_text("not json at all\n" + record)

    with pytest.raises(ConfigurationError, match="corrupt"):
        ArtifactStore(path).load()


def test_newer_schema_is_rejected(tmp_path):
    path = tmp_path / "store.jsonl"
    record = {"schema": 999, **_result("abc").to_dict()}
    path.write_text(json.dumps(record) + "\n")

    with pytest.raises(ConfigurationError, match="schema"):
        ArtifactStore(path).load()


def test_compact_drops_superseded_records(tmp_path):
    path = tmp_path / "store.jsonl"
    store = ArtifactStore(path)
    store.put(_result("abc", samples=(1.0,)))
    store.put(_result("abc", samples=(2.0,)))
    store.put(_result("def", samples=(3.0,)))

    dropped = ArtifactStore(path).compact()
    assert dropped == 1
    reloaded = ArtifactStore(path)
    assert len(reloaded) == 2
    assert reloaded.get("abc").samples == (2.0,)
