"""Deterministic fault plans and the chaos-only store subclass."""

from __future__ import annotations

import json

import pytest

from repro.campaign.faults import (
    CRASH,
    FAIL,
    HANG,
    ChaosStore,
    FaultInjectedCrash,
    FaultInjectedError,
    FaultPlan,
    run_job_with_faults,
)
from repro.campaign.jobs import run_job, seed_block_jobs
from repro.campaign.store import ArtifactStore
from repro.platform.presets import cba_config, rp_config
from repro.sim.errors import ConfigurationError


def _jobs(workload, num_runs=3):
    jobs = []
    for label, config in (("rp", rp_config()), ("cba", cba_config())):
        jobs += seed_block_jobs(
            label, "max_contention", seed=7, num_runs=num_runs,
            workload=workload, config=config, max_cycles=300_000,
        )
    return jobs


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
def test_plan_validates_rates_and_attempts():
    with pytest.raises(ConfigurationError):
        FaultPlan(crash_rate=0.6, fail_rate=0.6)
    with pytest.raises(ConfigurationError):
        FaultPlan(fail_rate=-0.1)
    with pytest.raises(ConfigurationError):
        FaultPlan(max_faulty_attempts=-1)


def test_targeted_sets_decide_faults_deterministically():
    plan = FaultPlan(
        crash_jobs=frozenset({"a"}),
        fail_jobs=frozenset({"b"}),
        hang_jobs=frozenset({"c"}),
    )
    assert plan.decide("a", 1) == CRASH
    assert plan.decide("b", 1) == FAIL
    assert plan.decide("c", 1) == HANG
    assert plan.decide("d", 1) is None


def test_faults_stop_after_max_faulty_attempts():
    plan = FaultPlan(crash_jobs=frozenset({"a"}), max_faulty_attempts=2)
    assert plan.decide("a", 1) == CRASH
    assert plan.decide("a", 2) == CRASH
    assert plan.decide("a", 3) is None  # retries terminate


def test_rate_based_faults_are_seed_deterministic():
    plan = FaultPlan(seed=3, crash_rate=0.3, fail_rate=0.3, hang_rate=0.3)
    decisions = [plan.decide(f"job-{i}", 1) for i in range(200)]
    assert decisions == [plan.decide(f"job-{i}", 1) for i in range(200)]
    counts = {kind: decisions.count(kind) for kind in (CRASH, FAIL, HANG, None)}
    assert all(counts[kind] > 0 for kind in (CRASH, FAIL, HANG, None))


def test_for_jobs_guarantees_disjoint_coverage(tiny_workload):
    jobs = _jobs(tiny_workload)
    plan = FaultPlan.for_jobs(jobs, seed=11, crashes=2, failures=2, hangs=1)
    assert len(plan.crash_jobs) == 2
    assert len(plan.fail_jobs) == 2
    assert len(plan.hang_jobs) == 1
    assert not (plan.crash_jobs & plan.fail_jobs & plan.hang_jobs)
    targeted = plan.crash_jobs | plan.fail_jobs | plan.hang_jobs
    assert targeted <= {job.job_id for job in jobs}
    assert plan.planned_faults(jobs) == {CRASH: 2, FAIL: 2, HANG: 1}
    # The selection is a pure function of the seed...
    again = FaultPlan.for_jobs(jobs, seed=11, crashes=2, failures=2, hangs=1)
    assert again.crash_jobs == plan.crash_jobs
    # ...and a different seed targets (deterministically) different jobs.
    other = FaultPlan.for_jobs(jobs, seed=12, crashes=2, failures=2, hangs=1)
    assert other.crash_jobs != plan.crash_jobs


def test_for_jobs_rejects_more_faults_than_jobs(tiny_workload):
    jobs = _jobs(tiny_workload)
    with pytest.raises(ConfigurationError, match="cannot target"):
        FaultPlan.for_jobs(jobs, seed=1, crashes=len(jobs), failures=1)


def test_corrupt_line_is_not_valid_json():
    plan = FaultPlan(seed=5, corrupt_puts=frozenset({1}))
    line = plan.corrupt_line(1)
    with pytest.raises(json.JSONDecodeError):
        json.loads(line)
    assert line == plan.corrupt_line(1)  # deterministic


# ----------------------------------------------------------------------
# run_job_with_faults
# ----------------------------------------------------------------------
def test_fail_action_raises_transient_error(tiny_workload):
    job = _jobs(tiny_workload, num_runs=1)[0]
    plan = FaultPlan(fail_jobs=frozenset({job.job_id}))
    with pytest.raises(FaultInjectedError):
        run_job_with_faults(job, 1, plan)


def test_crash_action_in_process_raises_instead_of_exiting(tiny_workload):
    job = _jobs(tiny_workload, num_runs=1)[0]
    plan = FaultPlan(crash_jobs=frozenset({job.job_id}))
    with pytest.raises(FaultInjectedCrash):
        run_job_with_faults(job, 1, plan, in_process=True)


def test_clean_attempts_produce_the_plain_run_job_result(tiny_workload):
    job = _jobs(tiny_workload, num_runs=1)[0]
    plan = FaultPlan(fail_jobs=frozenset({job.job_id}), max_faulty_attempts=1)
    result = run_job_with_faults(job, 2, plan)  # past the faulty attempts
    assert result.samples == run_job(job).samples


# ----------------------------------------------------------------------
# ChaosStore
# ----------------------------------------------------------------------
def test_chaos_store_injects_corruption_a_fresh_reader_quarantines(
    tiny_workload, tmp_path
):
    job_a, job_b = _jobs(tiny_workload, num_runs=1)
    plan = FaultPlan(seed=5, corrupt_puts=frozenset({1}))
    store = ChaosStore(tmp_path / "chaos.jsonl", plan)
    store.put(run_job(job_a))
    store.put(run_job(job_b))
    assert store.injected_corrupt_lines == 1

    # The writing campaign's in-memory index is oblivious to the damage...
    assert len(store) == 2
    # ...a fresh reader quarantines the non-trailing corrupt line and keeps
    # every real record.
    fresh = ArtifactStore(store.path)
    assert {r.job_id for r in fresh.results()} == {job_a.job_id, job_b.job_id}
    assert fresh.quarantined_lines == 1
    entry = json.loads(fresh.quarantine_path.read_text())
    assert entry["line"].startswith('{"job_id": "injected-corruption-1"')
