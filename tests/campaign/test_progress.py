"""Progress reporter behaviour."""

from __future__ import annotations

import io

from repro.campaign.progress import NullProgress, ProgressReporter


def test_null_progress_is_silent():
    progress = NullProgress()
    progress.start(total=10, skipped=2)
    progress.advance("job")
    progress.finish()  # nothing to assert: must simply not fail or print


def test_reporter_announces_resume_and_summary():
    stream = io.StringIO()
    progress = ProgressReporter(stream=stream, min_interval=0.0, prefix="test")
    progress.start(total=4, skipped=2)
    progress.advance("a/b")
    progress.advance("c/d")
    progress.finish()

    out = stream.getvalue()
    assert "resuming: 2/4 jobs already in the store" in out
    assert "3/4 jobs (75%)" in out
    assert "(a/b)" in out
    assert "done: 2 jobs executed, 2 reused from store" in out


def test_reporter_throttles_output():
    stream = io.StringIO()
    progress = ProgressReporter(stream=stream, min_interval=3600.0, prefix="test")
    progress.start(total=100)
    for _ in range(50):
        progress.advance()
    progress.finish()

    lines = [line for line in stream.getvalue().splitlines() if line]
    # Only the final summary gets through inside one throttle interval.
    assert len(lines) == 1
    assert lines[0].startswith("[test] done:")


def test_null_progress_resilience_hooks_are_silent():
    progress = NullProgress()
    progress.retry("a/b", 2, 3, "exception", 0.1)
    progress.quarantine("a/b", 3, "timeout")
    progress.degrade(4)  # nothing to assert: must simply not fail or print


def test_reporter_emits_retry_quarantine_and_degrade_unthrottled():
    stream = io.StringIO()
    # A huge throttle interval: resilience lines must get through anyway.
    progress = ProgressReporter(stream=stream, min_interval=3600.0, prefix="test")
    progress.start(total=4)
    progress.retry("a/b", 2, 3, "exception", 0.25)
    progress.retry("a/b", 3, 3, "timeout", 0.0)
    progress.quarantine("a/b", 3, "worker_crash")
    progress.degrade(4)

    out = stream.getvalue()
    assert "retry a/b: exception, attempt 2/3, backoff 0.25s" in out
    assert "retry a/b: timeout, attempt 3/3\n" in out  # no backoff suffix
    assert "quarantined a/b after 3 attempts (worker_crash)" in out
    assert "degraded to serial execution after 4 consecutive worker-pool failures" in out


def test_reporter_survives_a_closed_stream():
    stream = io.StringIO()
    progress = ProgressReporter(stream=stream, min_interval=0.0)
    progress.start(total=1)
    stream.close()
    progress.advance("x")  # must not raise
    progress.finish()


def test_reporter_streams_per_job_lines_from_chunked_batches(tiny_workload):
    """Batched dispatch must not coarsen progress: with multi-job chunks on
    the wire, the reporter still sees one advance per job as batch results
    stream back, not one per chunk."""
    from repro.campaign.campaign import Campaign
    from repro.campaign.executor import ParallelExecutor
    from repro.campaign.jobs import seed_block_jobs
    from repro.platform.presets import rp_config

    jobs = seed_block_jobs(
        "rp", "max_contention", seed=7, num_runs=6,
        workload=tiny_workload, config=rp_config(), max_cycles=300_000,
    )
    stream = io.StringIO()
    progress = ProgressReporter(stream=stream, min_interval=0.0, prefix="test")
    Campaign(
        executor=ParallelExecutor(max_workers=2, chunk_jobs=3),
        progress=progress,
    ).run(jobs)

    advance_lines = [
        line for line in stream.getvalue().splitlines() if "/6 jobs (" in line
    ]
    assert len(advance_lines) == len(jobs)
    assert any("6/6 jobs (100%)" in line for line in advance_lines)


def test_reporter_emits_dispatch_counters_with_the_profile():
    from repro.obs.profiler import CampaignProfiler

    profiler = CampaignProfiler()
    profiler.start(jobs=4, workers=2)
    profiler.add("dispatch", 0.5)
    profiler.count("batches", 2)
    profiler.count("cache_hit")
    profiler.finish()

    stream = io.StringIO()
    progress = ProgressReporter(stream=stream, min_interval=0.0, prefix="test")
    progress.report_profile(profiler)
    out = stream.getvalue()
    assert "[test] profile:" in out
    assert "[test] dispatch: batches 2, cache_hit 1" in out
