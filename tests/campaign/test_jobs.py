"""CampaignJob content hashing and execution."""

from __future__ import annotations

import pytest

from repro.campaign.jobs import CampaignJob, run_job, seed_block_jobs
from repro.platform.presets import cba_config, rp_config
from repro.sim.errors import ConfigurationError


def _job(workload, **overrides):
    fields = dict(
        label="tiny/RP-CON",
        scenario="max_contention",
        seed=3,
        workload=workload,
        config=rp_config(),
        max_cycles=200_000,
    )
    fields.update(overrides)
    return CampaignJob(**fields)


def test_job_id_is_stable_across_equal_specs(tiny_workload):
    assert _job(tiny_workload).job_id == _job(tiny_workload).job_id


def test_job_id_ignores_presentation_label(tiny_workload):
    job = _job(tiny_workload)
    assert job.with_updates(label="renamed").job_id == job.job_id


@pytest.mark.parametrize(
    "field, value",
    [
        ("seed", 4),
        ("run_start", 1),
        ("num_runs", 2),
        ("scenario", "isolation"),
        ("tua_core", 1),
        ("max_cycles", 100_000),
    ],
)
def test_job_id_depends_on_physics_fields(tiny_workload, field, value):
    job = _job(tiny_workload)
    assert job.with_updates(**{field: value}).job_id != job.job_id


def test_job_id_depends_on_workload_and_config(tiny_workload, quiet_workload):
    job = _job(tiny_workload)
    assert job.with_updates(workload=quiet_workload).job_id != job.job_id
    assert job.with_updates(config=cba_config()).job_id != job.job_id


def test_seed_block_jobs_cover_the_run_range(tiny_workload):
    jobs = seed_block_jobs(
        "tiny", "isolation", seed=1, num_runs=7, block_size=3,
        workload=tiny_workload, config=rp_config(), max_cycles=200_000,
    )
    assert [(j.run_start, j.num_runs) for j in jobs] == [(0, 3), (3, 3), (6, 1)]
    covered = [index for j in jobs for index in j.run_indices]
    assert covered == list(range(7))
    assert len({j.job_id for j in jobs}) == len(jobs)


def test_run_job_collects_samples_and_metrics(tiny_workload):
    result = run_job(_job(tiny_workload, num_runs=2))
    assert len(result.samples) == 2
    assert all(s > 0 for s in result.samples)
    assert result.truncated_runs == 0
    for metrics in result.metrics:
        assert {"total_cycles", "tua_bandwidth_share", "contender_requests"} <= set(
            metrics
        )


def test_run_job_records_truncation_instead_of_raising(tiny_workload):
    result = run_job(_job(tiny_workload, max_cycles=50))
    assert result.truncated_runs == 1


def test_unknown_scenario_is_rejected(tiny_workload):
    job = _job(tiny_workload, scenario="not-a-scenario")
    with pytest.raises(ConfigurationError, match="unknown campaign scenario"):
        run_job(job)


def test_invalid_job_parameters_are_rejected(tiny_workload):
    with pytest.raises(ConfigurationError):
        _job(tiny_workload, num_runs=0)
    with pytest.raises(ConfigurationError):
        _job(tiny_workload, run_start=-1)
    with pytest.raises(ConfigurationError):
        seed_block_jobs("x", "isolation", seed=0, num_runs=5, block_size=0)
