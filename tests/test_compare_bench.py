"""Tests for the CI benchmark regression gate (benchmarks/compare_bench.py).

The gate is a standalone script (benchmarks/ is not a package), so it is
exercised the way CI runs it: as a subprocess over crafted report files.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
COMPARE = REPO_ROOT / "benchmarks" / "compare_bench.py"


def kernel_report(
    batch: float = 1.0,
    fast_forward: float = 1.0,
    queue: float = 1.0,
    bit_identical: bool = True,
    stepping_mcps: float = 0.5,
    queue_mcps: float = 2.0,
) -> dict:
    scenario = {
        "cycles": 1_000_000,
        "wall_s_stepping": 4.0,
        "wall_s_fast_forward": fast_forward,
        "wall_s_batch": batch,
        "wall_s_event_queue": queue,
        "mcycles_per_s_stepping": stepping_mcps,
        "mcycles_per_s_event_queue": queue_mcps,
        "bit_identical": bit_identical,
    }
    return {
        "benchmark": "kernel_fast_forward",
        "scenarios": {
            "low_contention/isolation/round_robin": dict(scenario),
            "contention/round_robin": dict(scenario),
        },
    }


def campaign_report(bit_identical: bool = True, total_ms: float = 5.0) -> dict:
    return {
        "benchmark": "campaign_orchestration",
        "campaign": {
            "wall_s_serial": 10.0,
            "wall_s_pool": 4.0,
            "bit_identical": bit_identical,
        },
        "mbpta_post_1000_samples": {"total_ms": total_ms, "under_50ms": total_ms < 50.0},
    }


def run_gate(tmp_path: Path, kernel_current: dict, kernel_baseline: dict | None = None,
             campaign_current: dict | None = None) -> subprocess.CompletedProcess:
    args = [sys.executable, str(COMPARE)]
    current = tmp_path / "kernel_current.json"
    current.write_text(json.dumps(kernel_current))
    args += ["--kernel-current", str(current)]
    if kernel_baseline is not None:
        baseline = tmp_path / "kernel_baseline.json"
        baseline.write_text(json.dumps(kernel_baseline))
        args += ["--kernel-baseline", str(baseline)]
    if campaign_current is not None:
        campaign = tmp_path / "campaign_current.json"
        campaign.write_text(json.dumps(campaign_current))
        args += ["--campaign-current", str(campaign)]
    return subprocess.run(args, capture_output=True, text=True, cwd=REPO_ROOT)


def test_clean_reports_pass(tmp_path):
    result = run_gate(
        tmp_path, kernel_report(), kernel_report(), campaign_report()
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "regression gate passed" in result.stdout


def test_batch_slower_than_fast_forward_fails(tmp_path):
    result = run_gate(tmp_path, kernel_report(batch=1.5, fast_forward=1.0))
    assert result.returncode == 1
    assert "batch path" in result.stdout


def test_event_queue_slower_than_scan_fails(tmp_path):
    result = run_gate(tmp_path, kernel_report(batch=1.0, queue=1.3))
    assert result.returncode == 1
    assert "event-queue scheduler" in result.stdout


def test_untracked_scenarios_are_not_gated(tmp_path):
    """Only low_contention/* is wall-clock gated; the memory-latency-bound
    contention scenarios may sit at ~1x without failing the gate."""
    report = kernel_report()
    report["scenarios"]["contention/round_robin"]["wall_s_batch"] = 99.0
    report["scenarios"]["contention/round_robin"]["wall_s_event_queue"] = 99.0
    result = run_gate(tmp_path, report)
    assert result.returncode == 0, result.stdout + result.stderr


def test_bit_identity_failure_fails_everywhere(tmp_path):
    report = kernel_report()
    report["scenarios"]["contention/round_robin"]["bit_identical"] = False
    result = run_gate(tmp_path, report)
    assert result.returncode == 1
    assert "not bit-identical" in result.stdout


def test_normalised_throughput_regression_vs_baseline_fails(tmp_path):
    baseline = kernel_report(stepping_mcps=0.5, queue_mcps=2.0)  # 4.0x normalised
    current = kernel_report(stepping_mcps=0.5, queue_mcps=1.0)  # 2.0x normalised
    result = run_gate(tmp_path, current, baseline)
    assert result.returncode == 1
    assert "normalised throughput" in result.stdout


def test_baseline_diff_skipped_across_workload_sizes(tmp_path):
    """A --quick report (smaller traces, lower batch speedups) must not be
    gated against a full-size baseline — the diff is skipped, not failed."""
    baseline = kernel_report(stepping_mcps=0.5, queue_mcps=2.0)
    baseline["accesses"] = 800
    current = kernel_report(stepping_mcps=0.5, queue_mcps=1.0)  # would regress
    current["accesses"] = 200
    result = run_gate(tmp_path, current, baseline)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "workload sizes differ" in result.stdout


def test_machine_speed_differences_do_not_fail_baseline_diff(tmp_path):
    """A CI runner half as fast as the baseline machine scales stepping and
    default-mode throughput together; the normalised ratio is unchanged and
    the gate passes."""
    baseline = kernel_report(stepping_mcps=0.5, queue_mcps=2.0)
    current = kernel_report(stepping_mcps=0.25, queue_mcps=1.0)
    result = run_gate(tmp_path, current, baseline)
    assert result.returncode == 0, result.stdout + result.stderr


def test_pre_event_queue_baseline_schema_still_compares(tmp_path):
    """Baselines written before the event-queue column fall back to the
    batch column for the normalised-throughput diff."""
    baseline = kernel_report()
    for entry in baseline["scenarios"].values():
        del entry["mcycles_per_s_event_queue"]
        entry["mcycles_per_s_batch"] = 2.0
    result = run_gate(tmp_path, kernel_report(), baseline)
    assert result.returncode == 0, result.stdout + result.stderr


def test_dropped_tracked_scenario_is_logged(tmp_path):
    """A tracked scenario present in the baseline but missing from the fresh
    report shrinks the gate's coverage; the diff must say so explicitly."""
    baseline = kernel_report()
    baseline["scenarios"]["low_contention/isolation/tdma"] = dict(
        baseline["scenarios"]["low_contention/isolation/round_robin"]
    )
    result = run_gate(tmp_path, kernel_report(), baseline)
    assert result.returncode == 0, result.stdout + result.stderr
    assert "DROPPED from comparison" in result.stdout
    assert "low_contention/isolation/tdma" in result.stdout


def test_untracked_scenarios_are_listed_as_excluded(tmp_path):
    result = run_gate(tmp_path, kernel_report())
    assert result.returncode == 0, result.stdout + result.stderr
    assert "excluded from wall-clock gating" in result.stdout
    assert "contention/round_robin" in result.stdout


def test_campaign_bit_identity_failure_fails(tmp_path):
    result = run_gate(
        tmp_path, kernel_report(), campaign_current=campaign_report(bit_identical=False)
    )
    assert result.returncode == 1
    assert "pool executor" in result.stdout


def test_campaign_mbpta_budget_failure_fails(tmp_path):
    result = run_gate(
        tmp_path, kernel_report(), campaign_current=campaign_report(total_ms=80.0)
    )
    assert result.returncode == 1
    assert "MBPTA post-processing" in result.stdout
