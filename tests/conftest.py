"""Shared fixtures for the test suite.

The fixtures keep simulated workloads deliberately tiny so the full suite
runs in a couple of minutes: what the tests check are behaviours and
invariants, not paper-scale statistics (those live in ``benchmarks/``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.platform.presets import cba_config, hcba_config, rp_config
from repro.sim.config import BusTimings, CacheGeometry, CBAParameters
from repro.workloads.base import AddressPattern, WorkloadSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_timings() -> BusTimings:
    """The bus latency model of the paper (5..56 cycles, 28-cycle memory)."""
    return BusTimings(l2_hit_read=5, l2_hit_write=6, memory_latency=28, max_latency=56)


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A small cache geometry so tests exercise evictions quickly."""
    return CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2)


@pytest.fixture
def cba_params() -> CBAParameters:
    """Homogeneous CBA parameters with the paper's defaults (N=4, MaxL=56)."""
    return CBAParameters(max_latency=56, num_cores=4)


@pytest.fixture
def tiny_workload() -> WorkloadSpec:
    """A small, moderately bus-hungry workload that finishes in a few
    thousand cycles, used by platform-level tests."""
    return WorkloadSpec(
        name="tiny",
        num_accesses=120,
        working_set_bytes=4 * 1024,
        mean_compute_gap=6.0,
        gap_variability=0.3,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.2,
        hot_fraction=0.5,
        hot_region_bytes=1024,
    )


@pytest.fixture
def quiet_workload() -> WorkloadSpec:
    """A compute-dominated workload with sparse, short bus requests."""
    return WorkloadSpec(
        name="quiet",
        num_accesses=80,
        working_set_bytes=2 * 1024,
        mean_compute_gap=30.0,
        gap_variability=0.2,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.1,
        hot_fraction=0.8,
        hot_region_bytes=1024,
    )


@pytest.fixture
def rp_platform():
    """Baseline (no CBA) platform configuration."""
    return rp_config()


@pytest.fixture
def cba_platform():
    """Homogeneous CBA platform configuration."""
    return cba_config()


@pytest.fixture
def hcba_platform():
    """Heterogeneous CBA platform configuration (core 0 favoured at 50%)."""
    return hcba_config(favoured_core=0)
