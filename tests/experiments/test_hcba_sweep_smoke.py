"""Smoke test for the H-CBA ablation sweep."""

import pytest

from repro.experiments.hcba_sweep import run_hcba_sweep
from repro.workloads.synthetic import short_request_workload


@pytest.fixture(scope="module")
def result():
    return run_hcba_sweep(
        fractions=(0.5,),
        cap_multipliers=(2,),
        workload=short_request_workload(num_accesses=150),
        num_runs=1,
        access_scale=1.0,
    )


def test_reference_points_and_variants_present(result):
    labels = result.labels()
    assert "RP" in labels
    assert "CBA" in labels
    assert "H-CBA-shares-0.50" in labels
    assert "H-CBA-cap-x2" in labels


def test_cba_improves_on_rp_under_contention(result):
    assert result.by_label("CBA").tua_slowdown < result.by_label("RP").tua_slowdown


def test_hcba_gives_the_favoured_core_a_larger_share_than_cba(result):
    hcba = result.by_label("H-CBA-shares-0.50")
    cba = result.by_label("CBA")
    assert hcba.tua_slowdown <= cba.tua_slowdown + 0.05
    assert hcba.tua_bandwidth_share >= cba.tua_bandwidth_share - 0.02


def test_point_serialisation(result):
    point = result.by_label("RP").as_dict()
    assert {"label", "tua_slowdown", "tua_bandwidth_share"} <= set(point)


def test_unknown_label_raises(result):
    with pytest.raises(KeyError):
        result.by_label("nonexistent")
