"""Tests for the base-policy-under-CBA ablation."""

import pytest

from repro.experiments.base_policy_sweep import run_base_policy_sweep
from repro.workloads.synthetic import short_request_workload


@pytest.fixture(scope="module")
def result():
    # A sparse short-request task: its own bus demand is well below its fair
    # share, which is the regime where CBA is guaranteed to help regardless
    # of the base policy (a bus-saturating task would instead be limited by
    # its own budget — see the Figure 1 isolation columns).
    workload = short_request_workload(num_accesses=120, mean_compute_gap=25.0)
    return run_base_policy_sweep(
        policies=("round_robin", "random_permutations"),
        workload=workload,
        num_runs=1,
        access_scale=1.0,
    )


def test_every_policy_measured_with_and_without_cba(result):
    assert result.policies() == ["random_permutations", "round_robin"]
    for policy in result.policies():
        assert result.point(policy, use_cba=False).contention_cycles > 0
        assert result.point(policy, use_cba=True).contention_cycles > 0


def test_cba_improves_contention_for_the_papers_base_policy(result):
    """With the paper's base policy (random permutations) the CBA filter
    reduces the TuA's contention slowdown.  Deterministic round-robin can
    phase-lock with budget recovery, so for it the requirement is only that
    the combination stays close to the no-CBA behaviour."""
    assert result.improvement("random_permutations") > 1.0
    assert result.improvement("round_robin") > 0.8


def test_labels_and_lookup(result):
    point = result.point("round_robin", use_cba=True)
    assert point.label == "round_robin+CBA"
    with pytest.raises(KeyError):
        result.point("fifo", use_cba=False)


def test_slowdowns_are_normalised_to_a_common_baseline(result):
    for policy in result.policies():
        slowdown = result.contention_slowdown(policy, use_cba=False)
        assert slowdown > 1.0
