"""Tests for the Table I signal-behaviour experiment."""

import pytest

from repro.experiments.table1 import run_table1


@pytest.fixture(scope="module")
def result():
    return run_table1(tua_requests=10, tua_request_duration=6, tua_gap_cycles=4)


def test_signal_rules_hold(result):
    assert result.budget_rule_violations == []
    assert result.comp_rule_violations == []
    assert result.rules_hold


def test_both_modes_recorded(result):
    assert len(result.wcet_mode_rows) > 0
    assert len(result.operation_mode_rows) > 0
    assert result.tua_execution_cycles_wcet_mode == len(result.wcet_mode_rows)


def test_wcet_mode_rows_show_contender_requests_always_set(result):
    for row in result.wcet_mode_rows:
        assert row["REQ2"] == 1 and row["REQ3"] == 1 and row["REQ4"] == 1


def test_budgets_stay_within_8_bit_range(result):
    for row in result.wcet_mode_rows + result.operation_mode_rows:
        for core in range(1, 5):
            assert 0 <= row[f"BUDG{core}"] <= 224


def test_wcet_mode_is_slower_than_operation_mode(result):
    """Analysis-time contention (greedy MaxL contenders, zero initial budget)
    must upper-bound the contention-free operation-mode run."""
    assert len(result.wcet_mode_rows) >= len(result.operation_mode_rows)


def test_summary_reports_rule_checks(result):
    summary = result.summary()
    assert summary["rules_hold"] is True
    assert summary["budget_rule_violations"] == 0
