"""Tests for the shared experiment runner helpers."""

import pytest

from repro.experiments.runner import repeat_scenario, scale_workload
from repro.platform.scenarios import run_isolation


def test_scale_workload_shrinks_but_keeps_a_floor(tiny_workload):
    scaled = scale_workload(tiny_workload, 0.5)
    assert scaled.num_accesses == 60
    floored = scale_workload(tiny_workload, 0.0001)
    assert floored.num_accesses == 50


def test_scale_workload_identity_and_validation(tiny_workload):
    assert scale_workload(tiny_workload, 1.0) is tiny_workload
    assert scale_workload(tiny_workload, 2.0) is tiny_workload
    with pytest.raises(ValueError):
        scale_workload(tiny_workload, 0.0)


def test_repeat_scenario_collects_one_sample_per_run(rp_platform, quiet_workload):
    runs = repeat_scenario(
        run_isolation, quiet_workload, rp_platform, num_runs=3, seed=2, label="demo"
    )
    assert len(runs.samples) == 3
    assert runs.label == "demo"
    assert runs.min_cycles <= runs.mean_cycles <= runs.max_cycles
    assert runs.stats.count == 3


def test_repeat_scenario_requires_positive_run_count(rp_platform, quiet_workload):
    with pytest.raises(ValueError):
        repeat_scenario(run_isolation, quiet_workload, rp_platform, num_runs=0)
