"""Tests for the Section II illustrative-example experiment."""

import pytest

from repro.core.bounds import ContentionScenario
from repro.experiments.illustrative import run_illustrative_example


@pytest.fixture(scope="module")
def small_result():
    """A scaled-down version of the paper scenario (200 requests instead of
    1,000) so the test runs quickly; ratios are scale invariant."""
    scenario = ContentionScenario(isolation_cycles=2_000, tua_requests=200)
    return run_illustrative_example(scenario, seed=3)


def test_analytic_numbers_match_the_paper_exactly():
    result = run_illustrative_example(
        ContentionScenario(isolation_cycles=10_000, tua_requests=1_000),
        seed=1,
    )
    assert result.analytic_request_fair_cycles == 94_000
    assert result.analytic_cycle_fair_cycles == 28_000
    assert result.analytic_request_fair_slowdown == pytest.approx(9.4)
    assert result.analytic_cycle_fair_slowdown == pytest.approx(2.8)


def test_simulated_request_fair_slowdown_is_severe(small_result):
    """Request-fair arbitration: every short request waits behind three long
    ones, so the slowdown approaches the paper's ~9x."""
    assert small_result.simulated_request_fair_slowdown > 6.0


def test_simulated_cycle_fair_slowdown_is_much_lower(small_result):
    assert (
        small_result.simulated_cycle_fair_slowdown
        < 0.6 * small_result.simulated_request_fair_slowdown
    )


def test_simulated_cycle_fair_slowdown_roughly_bounded_by_core_count(small_result):
    """The paper's conclusion: with CBA the slowdown roughly matches the core
    count (4 here); allow some head-room for grant-boundary effects."""
    assert small_result.simulated_cycle_fair_slowdown < 4.5


def test_isolation_simulation_close_to_analytic(small_result):
    analytic = small_result.analytic_isolation_cycles
    simulated = small_result.simulated_isolation_cycles
    assert simulated == pytest.approx(analytic, rel=0.15)


def test_as_dict_round_trip(small_result):
    data = small_result.as_dict()
    assert "analytic" in data and "simulated" in data
    assert data["analytic"]["request_fair_slowdown"] == pytest.approx(9.4)
