"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_every_command():
    parser = build_parser()
    for command in (
        ["illustrative"],
        ["table1"],
        ["figure1"],
        ["overheads"],
        ["mbpta"],
        ["hcba-sweep"],
        ["policy-sweep"],
        ["list-workloads"],
    ):
        args = parser.parse_args(command)
        assert args.command == command[0]


def test_missing_command_is_an_error():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_unknown_benchmark_rejected_by_argparse():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["mbpta", "not_a_benchmark"])


def test_list_workloads_prints_registry(capsys):
    assert main(["list-workloads"]) == 0
    out = capsys.readouterr().out
    assert "matrix" in out
    assert "streaming" in out


def test_list_workloads_verbose_includes_parameters(capsys):
    assert main(["list-workloads", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "working set" in out


def test_overheads_command_succeeds_and_reports_claim(capsys):
    assert main(["overheads"]) == 0
    out = capsys.readouterr().out
    assert "addon_vs_platform_percent" in out


def test_table1_command_checks_rules(capsys):
    assert main(["table1", "--tua-requests", "5", "--rows", "5"]) == 0
    out = capsys.readouterr().out
    assert "BUDG1" in out
    assert "rules_hold" in out


def test_illustrative_command_small_scenario(capsys):
    exit_code = main(["illustrative", "--requests", "100", "--isolation-cycles", "1000"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "request-fair slowdown" in out
    assert "9.40x" in out
