"""Tests for the implementation-overhead experiment."""

from repro.experiments.overheads import run_overheads


def test_overhead_result_reproduces_the_paper_claim():
    result = run_overheads()
    assert result.claim_holds
    assert result.addon_vs_platform_percent < result.paper_claim_percent_upper_bound
    assert result.cba_addon_aluts < 1000
    assert result.platform_aluts > 100_000


def test_overheads_for_other_base_policies_also_small():
    for policy in ("round_robin", "tdma", "lottery"):
        result = run_overheads(base_policy=policy)
        assert result.addon_vs_platform_percent < 0.1


def test_summary_is_serialisable():
    summary = run_overheads().summary()
    assert summary["claim_holds"] is True
    assert "addon_vs_platform_percent" in summary
