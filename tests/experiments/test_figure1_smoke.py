"""Smoke test for the Figure 1 experiment driver.

The full regeneration (4 benchmarks x 6 configurations x many runs) lives in
``benchmarks/``; here a single benchmark with tiny traces checks that the
driver wires scenarios and normalisation together correctly and that the
qualitative ordering of the paper holds even at small scale.
"""

import pytest

from repro.experiments.figure1 import FIGURE1_CONFIGURATIONS, run_figure1


@pytest.fixture(scope="module")
def result():
    return run_figure1(
        benchmarks=("canrdr",), num_runs=1, access_scale=0.25, seed=13
    )


def test_all_six_configurations_present(result):
    assert set(result.slowdowns["canrdr"]) == set(FIGURE1_CONFIGURATIONS)


def test_baseline_normalisation_is_one(result):
    assert result.slowdowns["canrdr"]["RP-ISO"] == pytest.approx(1.0)


def test_contention_slows_down_and_cba_helps(result):
    slowdowns = result.slowdowns["canrdr"]
    assert slowdowns["RP-CON"] > 1.1
    assert slowdowns["CBA-CON"] < slowdowns["RP-CON"]


def test_hcba_isolation_is_cheaper_than_cba_isolation(result):
    slowdowns = result.slowdowns["canrdr"]
    assert slowdowns["H-CBA-ISO"] <= slowdowns["CBA-ISO"] + 0.02


def test_table_rendering_contains_benchmark_and_configs(result):
    table = result.to_table()
    assert "canrdr" in table
    for config in FIGURE1_CONFIGURATIONS:
        assert config in table


def test_helper_accessors(result):
    assert result.worst_contention_slowdown("RP-CON") == result.slowdowns["canrdr"]["RP-CON"]
    assert result.isolation_overhead("CBA-ISO") >= 0.0
