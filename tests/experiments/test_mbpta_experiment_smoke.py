"""Smoke test for the MBPTA experiment driver (small run counts)."""

import pytest

from repro.experiments.mbpta_experiment import run_mbpta_experiment


@pytest.fixture(scope="module")
def result():
    return run_mbpta_experiment(
        benchmark="canrdr",
        configuration="CBA",
        num_runs=24,
        operation_runs=4,
        access_scale=0.15,
        block_size=4,
    )


def test_collects_the_requested_number_of_runs(result):
    assert len(result.mbpta.samples) == 24
    assert len(result.operation_samples) == 4


def test_pwcet_bound_dominates_observed_behaviour(result):
    assert result.pwcet_bound >= result.mbpta.observed_max
    assert result.bound_dominates_operation


def test_summary_contains_the_key_fields(result):
    summary = result.summary()
    for key in ("benchmark", "configuration", "iid_ok", "pwcet_bound"):
        assert key in summary
    assert summary["benchmark"] == "canrdr"


def test_execution_times_vary_across_runs(result):
    assert len(set(result.mbpta.samples)) > 1
