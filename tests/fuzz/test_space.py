"""Tests for the fuzz scenario space: drawing, validity, serialisation."""

import numpy as np
import pytest

from repro.fuzz import (
    KERNEL_MODES,
    SCENARIO_KINDS,
    build_system,
    draw_scenario,
    fuzz_iteration,
    monotonicity_eligible,
    scenario_from_dict,
    scenario_to_dict,
)
from repro.fuzz.space import DETERMINISTIC_ARBITERS, canonical_json


def _draw_many(seed: int, count: int):
    rng = np.random.default_rng(seed)
    return [draw_scenario(rng) for _ in range(count)]


def test_drawn_scenarios_are_buildable_in_every_mode():
    """Every drawn scenario must assemble a system without errors — the
    space generates only valid configurations by construction."""
    for scenario in _draw_many(5, 15):
        for mode in KERNEL_MODES:
            build_system(scenario, mode)


def test_drawing_is_deterministic_for_a_seed():
    assert _draw_many(17, 10) == _draw_many(17, 10)


def test_iteration_seeds_give_distinct_scenarios():
    scenarios = {fuzz_iteration(3, i) for i in range(10)}
    assert len(scenarios) > 1


def test_space_covers_kinds_arbiters_and_memory_models():
    scenarios = _draw_many(29, 120)
    kinds = {s.kind for s in scenarios}
    arbiters = {s.config.arbitration for s in scenarios}
    models = {s.config.memory.model for s in scenarios}
    assert kinds == set(SCENARIO_KINDS)
    assert len(arbiters) >= 5
    assert models == {"fixed", "banked"}
    assert any(s.config.memory.controller_policy == "frfcfs" for s in scenarios)
    assert any(s.config.use_cba for s in scenarios)


def test_json_round_trip_is_identity():
    for scenario in _draw_many(41, 20):
        record = scenario_to_dict(scenario)
        assert scenario_from_dict(record) == scenario
        # Canonical form is stable under a second round trip.
        assert canonical_json(record) == canonical_json(
            scenario_to_dict(scenario_from_dict(record))
        )


def test_monotonicity_gated_to_sound_configurations():
    for scenario in _draw_many(53, 60):
        if "monotonicity" not in scenario.checks:
            continue
        config = scenario.config
        assert config.arbitration in DETERMINISTIC_ARBITERS
        assert not config.random_caches
        assert config.l2_partitioned
        assert config.memory.model == "fixed"
        assert config.store_buffer_entries == 0
        assert monotonicity_eligible(config)


def test_banked_configs_respect_the_maxl_contract():
    """2 × conflict + overhead must never exceed the bus MaxL bound."""
    for scenario in _draw_many(61, 60):
        memory = scenario.config.memory
        if memory.model != "banked":
            continue
        worst = 2 * memory.row_conflict_latency + scenario.config.bus_timings.bus_overhead
        assert worst <= scenario.config.bus_timings.max_latency


def test_invalid_scenarios_rejected():
    scenario = fuzz_iteration(1, 0)
    with pytest.raises(Exception):
        scenario.with_updates(tua_core=scenario.config.num_cores)
    with pytest.raises(Exception):
        scenario.with_updates(kind="bogus")
    with pytest.raises(Exception):
        scenario.with_updates(workloads=())
