"""Tests for the deterministic greedy shrinker."""

from repro.fuzz import check_scenario, fuzz_iteration, shrink_scenario


def _failing_pair(seed: int = 99, budget: int = 40):
    """A (scenario, violation) pair produced by a one-mode perturbation."""

    def perturb(system, mode_name):
        if mode_name == "batch":
            slave = system.l2_slave
            slave._duration_by_class = {
                kind: max(1, duration - 1)
                for kind, duration in slave._duration_by_class.items()
            }

    for i in range(budget):
        scenario = fuzz_iteration(seed, i)
        violations = check_scenario(scenario, perturb)
        if violations:
            return scenario, violations[0], perturb
    raise AssertionError(f"perturbation never caught within {budget} draws")


def test_shrink_preserves_the_failure():
    scenario, violation, perturb = _failing_pair()
    shrunk, shrunk_violation, attempts = shrink_scenario(scenario, violation, perturb)
    assert shrunk_violation.invariant == violation.invariant
    assert attempts > 0
    # The shrunk scenario still fails with the perturbation...
    found = check_scenario(shrunk, perturb)
    assert found and found[0].invariant == violation.invariant
    # ...and its checks were narrowed to the failing invariant.
    assert shrunk.checks == (violation.invariant,)


def test_shrink_is_deterministic():
    scenario, violation, perturb = _failing_pair()
    first = shrink_scenario(scenario, violation, perturb)
    second = shrink_scenario(scenario, violation, perturb)
    assert first == second


def test_shrink_simplifies_the_scenario():
    scenario, violation, perturb = _failing_pair()
    shrunk, _violation, _attempts = shrink_scenario(scenario, violation, perturb)
    before = sum(spec.num_accesses for _core, spec in scenario.workloads)
    after = sum(spec.num_accesses for _core, spec in shrunk.workloads)
    assert after <= before
    assert shrunk.config.num_cores <= scenario.config.num_cores


def test_shrink_respects_the_attempt_budget():
    scenario, violation, perturb = _failing_pair()
    _shrunk, _violation, attempts = shrink_scenario(
        scenario, violation, perturb, max_attempts=5
    )
    assert attempts <= 5
