"""Replay the committed fuzz corpus.

Every file in ``tests/fuzz/corpus/`` is a minimised scenario the fuzzer once
produced (or a hand-minimised regression case); tier-1 replays them all so a
behaviour change that breaks a previously-established invariant fails CI
immediately, with the repro file already in hand.
"""

from pathlib import Path

import pytest

from repro.fuzz import load_repro, replay_file

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert CASES, "tests/fuzz/corpus/ must hold at least one scenario"


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_corpus_case_replays_clean(path):
    violations = replay_file(path)
    assert violations == [], violations


def test_corpus_covers_both_memory_models_and_cba():
    scenarios = [load_repro(path)[0] for path in CASES]
    assert any(s.config.memory.model == "banked" for s in scenarios)
    assert any(s.config.memory.model == "fixed" for s in scenarios)
    assert any(s.config.memory.controller_policy == "frfcfs" for s in scenarios)
    assert any(s.config.use_cba for s in scenarios)
    assert any(s.config.arbitration == "tdma" for s in scenarios)
