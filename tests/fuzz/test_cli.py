"""Tests for the ``repro fuzz`` command-line interface."""

import json

from repro.fuzz import fuzz_iteration, write_repro
from repro.fuzz.cli import main


def test_run_clean_exits_zero(capsys):
    assert main(["run", "--seed", "7", "--iterations", "3", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "failures=0" in out


def test_replay_passing_repro_exits_zero(tmp_path, capsys):
    path = tmp_path / "case.json"
    write_repro(path, fuzz_iteration(7, 0))
    assert main(["replay", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"PASS {path}" in out


def test_replay_unreadable_repro_exits_two(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{}", encoding="utf-8")
    assert main(["replay", str(path)]) == 2


def test_replay_rejects_future_versions(tmp_path):
    scenario_path = tmp_path / "good.json"
    write_repro(scenario_path, fuzz_iteration(7, 0))
    record = json.loads(scenario_path.read_text(encoding="utf-8"))
    record["version"] = 99
    scenario_path.write_text(json.dumps(record), encoding="utf-8")
    assert main(["replay", str(scenario_path)]) == 2


def test_shrink_on_passing_repro_is_a_no_op(tmp_path, capsys):
    path = tmp_path / "case.json"
    write_repro(path, fuzz_iteration(7, 0))
    before = path.read_text(encoding="utf-8")
    assert main(["shrink", str(path)]) == 0
    assert path.read_text(encoding="utf-8") == before
    assert "nothing to shrink" in capsys.readouterr().out


def test_top_level_cli_exposes_fuzz():
    from repro.cli import main as repro_main

    assert repro_main(["fuzz", "run", "--seed", "7", "--iterations", "1", "--quiet"]) == 0
