"""Tests for the fuzz invariant harness itself."""

import pytest

from repro.fuzz import (
    KERNEL_MODES,
    PRODUCTION_MODE,
    check_modes,
    check_scenario,
    fuzz_iteration,
    run_mode,
    snapshot,
)


def _scenario_of_kind(kind: str, seed: int = 77, budget: int = 200):
    for i in range(budget):
        scenario = fuzz_iteration(seed, i)
        if scenario.kind == kind:
            return scenario
    raise AssertionError(f"no {kind} scenario within {budget} draws")


def test_all_kinds_run_in_production_mode():
    for kind in ("isolation", "max_contention", "wcet_estimation",
                 "multiprogram", "mixed_criticality"):
        scenario = _scenario_of_kind(kind)
        result = run_mode(scenario, PRODUCTION_MODE)
        assert result.total_cycles > 0


def test_snapshot_covers_counters_and_memory():
    scenario = fuzz_iteration(77, 0)
    shot = snapshot(run_mode(scenario, PRODUCTION_MODE), scenario.tua_core)
    assert shot["total_cycles"] > 0
    assert scenario.tua_core in shot["core_counters"]
    assert "memory" in shot["extra"]
    # Observability output is mode-dependent and must stay out of the snapshot.
    assert "observability" not in shot


def test_check_modes_passes_on_a_healthy_scenario():
    assert check_modes(fuzz_iteration(77, 0)) is None


def test_perturbing_one_mode_is_detected():
    scenario = fuzz_iteration(77, 0)

    # A perturbation of the L2 latency table in exactly one mode must
    # surface as a "modes" violation.
    def perturb_latency(system, mode_name):
        if mode_name == "batch":
            slave = system.l2_slave
            slave._duration_by_class = {
                kind: max(1, duration - 1)
                for kind, duration in slave._duration_by_class.items()
            }

    violation = check_modes(scenario, perturb_latency)
    assert violation is not None
    assert violation.invariant == "modes"
    assert "batch" in violation.detail


def test_unknown_invariant_name_rejected():
    scenario = fuzz_iteration(77, 0).with_updates(checks=("nonsense",))
    with pytest.raises(ValueError):
        check_scenario(scenario)


def test_modes_table_matches_the_equivalence_matrix():
    names = [mode.name for mode in KERNEL_MODES]
    assert names == ["stepping", "fast_forward", "batch", "event_queue"]
    assert KERNEL_MODES[0].fast_forward is False
    assert PRODUCTION_MODE.event_queue is True
