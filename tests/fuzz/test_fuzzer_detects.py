"""Mutation checks: the fuzzer must catch deliberately-broken components.

These are the acceptance tests of the whole fuzz lane.  Each test plants one
realistic bug — an arbiter whose fast-forward wake hint lies, a DRAM timing
that differs in one kernel mode — and asserts the fuzzer finds it within a
bounded, fixed seed budget, shrinks it, and that the shrunk repro file
replays to the same failure.
"""

from unittest import mock

from repro.arbiters import registry
from repro.arbiters.tdma import TDMAArbiter
from repro.fuzz import fuzz_run, load_repro, replay_file, replay_scenario


class _BrokenTDMA(TDMAArbiter):
    """TDMA whose wake hint overshoots by a slot: event-driven modes oversleep."""

    def next_grant_opportunity(self, requestors, cycle):
        wake = super().next_grant_opportunity(requestors, cycle)
        return None if wake is None else wake + self.slot_cycles


def _make_broken_tdma(num_masters, rng, options):
    return _BrokenTDMA(
        num_masters,
        slot_cycles=options.get("slot_cycles", 56),
        schedule=options.get("schedule"),
        issue_only_at_slot_start=options.get("issue_only_at_slot_start", True),
    )


def _perturb_banked_dram(system, mode_name):
    """Make banked DRAM slightly faster in the batch mode only."""
    if mode_name == "batch" and type(system.dram).__name__ == "BankedDRAM":
        system.dram.row_hit_latency += 3


def test_broken_arbiter_caught_within_seed_budget(tmp_path):
    with mock.patch.dict(registry.ARBITER_POLICIES, {"tdma": _make_broken_tdma}):
        report = fuzz_run(
            master_seed=2024,
            iterations=10,
            artifacts_dir=tmp_path,
            max_failures=1,
        )
        assert report.failures, "broken TDMA survived 10 fuzz iterations"
        failure = report.failures[0]
        assert failure.violation.invariant == "modes"
        assert failure.scenario.config.arbitration == "tdma"
        # The shrunk repro file replays to the same violation while the bug
        # is still planted...
        replayed = replay_file(failure.repro_path)
        assert replayed and replayed[0].invariant == "modes"
    # ...and passes once the arbiter is fixed: the repro pinpoints the bug.
    assert replay_file(failure.repro_path) == []


def test_mode_local_dram_bug_caught_and_shrunk(tmp_path):
    report = fuzz_run(
        master_seed=99,
        iterations=6,
        artifacts_dir=tmp_path,
        max_failures=1,
        perturb=_perturb_banked_dram,
    )
    assert report.failures, "mode-local DRAM bug survived 6 fuzz iterations"
    failure = report.failures[0]
    assert failure.violation.invariant == "modes"
    assert failure.scenario.config.memory.model == "banked"
    # Shrinking preserved the failure (checked with the bug still present).
    scenario, record = load_repro(failure.repro_path)
    assert record["invariant"] == "modes"
    replayed = replay_scenario(scenario, _perturb_banked_dram)
    assert replayed and replayed[0].invariant == "modes"
    # Without the perturbation the shrunk scenario is healthy.
    assert replay_scenario(scenario) == []


def test_clean_run_reports_no_failures(tmp_path):
    report = fuzz_run(master_seed=7, iterations=4, artifacts_dir=tmp_path)
    assert report.passed
    assert report.checks_run >= 4
    assert list(tmp_path.iterdir()) == []
