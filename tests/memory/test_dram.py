"""Tests for the DRAM model."""

import pytest

from repro.memory.dram import DRAM


def test_flat_latency_matches_paper():
    dram = DRAM()
    assert dram.access(0x1000, read=True) == 28
    assert dram.access(0x2000, read=False) == 28


def test_access_counting_by_type():
    dram = DRAM()
    dram.access(read=True)
    dram.access(read=True)
    dram.access(read=False)
    assert dram.stats.counter("reads").value == 2
    assert dram.stats.counter("writes").value == 1
    assert dram.total_accesses == 3


def test_open_row_model_rewards_row_hits():
    dram = DRAM(access_latency=28, row_bytes=1024, row_hit_latency=10)
    assert dram.access(0x0000) == 28       # row miss (opens row 0)
    assert dram.access(0x0100) == 10       # same row
    assert dram.access(0x0400) == 28       # different row
    assert dram.stats.counter("row_hits").value == 1
    assert dram.stats.counter("row_misses").value == 2


def test_invalid_latencies_rejected():
    with pytest.raises(ValueError):
        DRAM(access_latency=0)
    with pytest.raises(ValueError):
        DRAM(access_latency=28, row_hit_latency=50)


def test_reset_clears_state_and_counters():
    dram = DRAM(row_hit_latency=10)
    dram.access(0x0)
    dram.reset()
    assert dram.total_accesses == 0
    assert dram.access(0x0) == 28  # the open row was forgotten
