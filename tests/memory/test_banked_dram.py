"""Tests for the banked DRAM model (row-buffer state machine per bank)."""

import pytest

from repro.memory.dram import BankedDRAM
from repro.sim.errors import ConfigurationError

# num_banks=4, row_bytes=1024 => global row r lives in bank r % 4, row r // 4.
ROW = 1024


def _dram(**kwargs) -> BankedDRAM:
    defaults = dict(
        num_banks=4,
        row_bytes=ROW,
        row_hit_latency=16,
        row_miss_latency=24,
        row_conflict_latency=28,
    )
    defaults.update(kwargs)
    return BankedDRAM(**defaults)


def test_first_access_is_a_row_miss():
    dram = _dram()
    assert dram.access(0x0000) == 24
    assert dram.stats.counter("row_misses").value == 1


def test_same_row_hits_after_opening():
    dram = _dram()
    dram.access(0x0000)
    assert dram.is_row_hit(0x0200)
    assert dram.access(0x0200) == 16  # same global row, open
    assert dram.access(0x03FF) == 16
    assert dram.stats.counter("row_hits").value == 2


def test_different_row_same_bank_conflicts():
    dram = _dram()
    dram.access(0)  # bank 0, row 0
    assert not dram.is_row_hit(4 * ROW)
    assert dram.access(4 * ROW) == 28  # bank 0, row 1: close + open
    assert dram.stats.counter("row_conflicts").value == 1
    # The conflict left row 1 open: revisiting it now hits.
    assert dram.access(4 * ROW) == 16


def test_banks_hold_independent_open_rows():
    dram = _dram()
    # Rows 0..3 land in four different banks: all misses, no conflicts.
    for bank in range(4):
        assert dram.access(bank * ROW) == 24
    assert dram.stats.counter("row_conflicts").value == 0
    # Every bank still has its row open.
    for bank in range(4):
        assert dram.access(bank * ROW) == 16


def test_read_write_counters():
    dram = _dram()
    dram.access(0, read=True)
    dram.access(ROW, read=False)
    assert dram.stats.counter("reads").value == 1
    assert dram.stats.counter("writes").value == 1
    assert dram.total_accesses == 2


def test_reset_forgets_open_rows_and_counters():
    dram = _dram()
    dram.access(0)
    dram.access(0)
    dram.reset()
    assert dram.total_accesses == 0
    assert not dram.is_row_hit(0)
    assert dram.access(0) == 24  # back to a cold miss


def test_invalid_parameters_rejected():
    with pytest.raises(ConfigurationError):
        _dram(num_banks=0)
    with pytest.raises(ConfigurationError):
        _dram(row_bytes=1000)  # not a power of two
    with pytest.raises(ConfigurationError):
        _dram(row_hit_latency=0)
    with pytest.raises(ConfigurationError):
        _dram(row_miss_latency=12)  # miss < hit
    with pytest.raises(ConfigurationError):
        _dram(row_conflict_latency=20)  # conflict < miss
