"""Tests for the memory controller."""

from repro.memory.controller import MemoryController
from repro.memory.dram import DRAM


def test_forwards_accesses_to_dram_and_returns_latency():
    controller = MemoryController(DRAM(access_latency=28))
    assert controller.access(0x0, read=True) == 28
    assert controller.dram.total_accesses == 1


def test_counts_reads_writes_and_busy_cycles():
    controller = MemoryController()
    controller.access(read=True)
    controller.access(read=False)
    assert controller.stats.counter("reads").value == 1
    assert controller.stats.counter("writes").value == 1
    assert controller.stats.counter("busy_cycles").value == 56
    assert controller.total_accesses == 2


def test_default_dram_created_when_omitted():
    controller = MemoryController()
    assert controller.dram.access_latency == 28


def test_reset_clears_controller_and_dram():
    controller = MemoryController()
    controller.access()
    controller.reset()
    assert controller.total_accesses == 0
    assert controller.dram.total_accesses == 0
