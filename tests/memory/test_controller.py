"""Tests for the memory controller."""

import pytest

from repro.memory.controller import MemoryController
from repro.memory.dram import DRAM, BankedDRAM
from repro.sim.errors import ConfigurationError


def test_forwards_accesses_to_dram_and_returns_latency():
    controller = MemoryController(DRAM(access_latency=28))
    assert controller.access(0x0, read=True) == 28
    assert controller.dram.total_accesses == 1


def test_counts_reads_writes_and_busy_cycles():
    controller = MemoryController()
    controller.access(read=True)
    controller.access(read=False)
    assert controller.stats.counter("reads").value == 1
    assert controller.stats.counter("writes").value == 1
    assert controller.stats.counter("busy_cycles").value == 56
    assert controller.total_accesses == 2


def test_default_dram_created_when_omitted():
    controller = MemoryController()
    assert controller.dram.access_latency == 28


def test_reset_clears_controller_and_dram():
    controller = MemoryController()
    controller.access()
    controller.reset()
    assert controller.total_accesses == 0
    assert controller.dram.total_accesses == 0


# ----------------------------------------------------------------------
# Multi-access transactions and controller arbitration policies
# ----------------------------------------------------------------------
def _banked() -> BankedDRAM:
    return BankedDRAM(
        num_banks=4,
        row_bytes=1024,
        row_hit_latency=16,
        row_miss_latency=24,
        row_conflict_latency=28,
    )


def test_single_access_transaction_equals_access():
    controller = MemoryController(_banked())
    assert controller.transaction([(0x0, True)]) == 24


def test_in_order_serves_accesses_as_issued():
    controller = MemoryController(_banked(), policy="in_order")
    controller.access(0)  # opens bank 0, row 0
    # Victim writeback to bank 0 row 1 (conflict), then fetch of row 0 (conflict
    # again, because the writeback just closed it).
    latency = controller.transaction([(4 * 1024, False), (0, True)])
    assert latency == 28 + 28
    assert controller.stats.counter("reordered_accesses").value == 0


def test_frfcfs_prefers_the_open_row():
    controller = MemoryController(_banked(), policy="frfcfs")
    controller.access(0)  # opens bank 0, row 0
    # Same transaction: FR-FCFS serves the row-hitting fetch first (16), then
    # the writeback conflicts once (28) instead of twice.
    latency = controller.transaction([(4 * 1024, False), (0, True)])
    assert latency == 16 + 28
    assert controller.stats.counter("reordered_accesses").value == 1


def test_frfcfs_is_in_order_when_nothing_hits():
    controller = MemoryController(_banked(), policy="frfcfs")
    latency = controller.transaction([(0, True), (1024, True)])
    assert latency == 24 + 24  # two cold misses, no reordering
    assert controller.stats.counter("reordered_accesses").value == 0


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        MemoryController(policy="out_of_order")
