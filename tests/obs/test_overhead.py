"""Zero-cost-when-disabled guard for the observability layer.

Two complementary checks:

* **structural** — with no :class:`ObservabilityConfig`, the kernel keeps the
  seed's exact hot loop: real components (not timing proxies) in the
  pre-bound hook lists, a disabled :class:`NullTraceRecorder`, no profiler.
* **behavioural** — enabling the full instrumentation changes *nothing*
  about what a run computes (bit-identity), and merely passing a disabled
  config costs no measurable wall-clock versus passing none at all.

The seed-level wall-clock bound itself is enforced where it can be measured
honestly: ``benchmarks/compare_bench.py`` gates the fresh CI report against
the committed pre-observability baseline.
"""

from __future__ import annotations

from time import perf_counter

from repro.obs.profiler import _HookProxy
from repro.platform.presets import rp_config
from repro.platform.system import MulticoreSystem, SystemResult
from repro.sim.config import ObservabilityConfig
from repro.sim.trace import NullTraceRecorder


def build_system(workload, obs: ObservabilityConfig | None) -> MulticoreSystem:
    system = MulticoreSystem(rp_config(), seed=11, obs=obs)
    system.add_task(0, workload)
    for core in range(1, 4):
        system.add_greedy_contender(core)
    return system


def result_snapshot(result: SystemResult) -> dict:
    """Everything a run computes (excluding the observability side channel)."""
    return {
        "total_cycles": result.total_cycles,
        "core_counters": {
            core: counters.as_dict()
            for core, counters in result.core_counters.items()
        },
        "bus_utilization": result.bus_utilization,
        "grants_per_core": result.grants_per_core,
        "cycles_per_core": result.cycles_per_core,
        "extra": result.extra,
    }


def test_default_system_keeps_the_seed_hot_loop(tiny_workload):
    system = build_system(tiny_workload, obs=None)
    system.run(max_cycles=60_000)
    kernel = system.kernel
    assert isinstance(kernel.trace, NullTraceRecorder)
    assert not kernel.trace.enabled
    assert system.profiler is None
    for hooks in (kernel._tickers, kernel._post_tickers, kernel._fast_forwarders):
        assert not any(isinstance(component, _HookProxy) for component in hooks)


def test_all_off_config_is_equivalent_to_none(tiny_workload):
    system = build_system(tiny_workload, obs=ObservabilityConfig())
    system.run(max_cycles=60_000)
    assert isinstance(system.kernel.trace, NullTraceRecorder)
    assert system.profiler is None


def test_disabled_run_records_nothing(tiny_workload):
    system = build_system(tiny_workload, obs=None)
    system.run(max_cycles=60_000)
    assert system.kernel.trace.events == []


def test_results_bit_identical_with_and_without_instrumentation(tiny_workload):
    """Full instrumentation observes the run without perturbing it."""
    plain = build_system(tiny_workload, obs=None).run(max_cycles=60_000)
    instrumented_system = build_system(
        tiny_workload,
        obs=ObservabilityConfig(timeline=True, profile_kernel=True),
    )
    instrumented = instrumented_system.run(max_cycles=60_000)

    assert result_snapshot(instrumented) == result_snapshot(plain)
    assert len(instrumented_system.kernel.trace.events) > 0  # it did observe


def test_disabled_config_adds_no_measurable_wall_clock(tiny_workload):
    """Median-of-3 wall-clock with a disabled config stays within noise of
    omitting the config entirely (both take the identical code path); the
    generous factor absorbs CI scheduling jitter."""

    def median_wall(obs: ObservabilityConfig | None) -> float:
        walls = []
        for _ in range(3):
            system = build_system(tiny_workload, obs=obs)
            started = perf_counter()
            system.run(max_cycles=60_000)
            walls.append(perf_counter() - started)
        return sorted(walls)[1]

    baseline = median_wall(None)
    disabled = median_wall(ObservabilityConfig())
    assert disabled <= baseline * 1.5 + 0.05
