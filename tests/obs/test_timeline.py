"""Tests for the ring-buffered timeline recorder and Chrome trace export."""

import json

from repro.obs.timeline import TimelineRecorder, chrome_trace, write_chrome_trace
from repro.platform.system import MulticoreSystem
from repro.sim.config import ObservabilityConfig
from repro.sim.trace import TraceEvent


class TestTimelineRecorder:
    def test_unbounded_keeps_everything(self):
        recorder = TimelineRecorder()
        for cycle in range(100):
            recorder.record(cycle, "bus", "bus.grant")
        assert len(recorder) == 100
        assert recorder.dropped == 0

    def test_ring_keeps_most_recent_and_counts_drops(self):
        recorder = TimelineRecorder(capacity=10)
        for cycle in range(25):
            recorder.record(cycle, "bus", "bus.grant")
        assert len(recorder) == 10
        assert recorder.dropped == 15
        assert [event.cycle for event in recorder.events] == list(range(15, 25))

    def test_kind_filter(self):
        recorder = TimelineRecorder(kinds=["bus.grant"])
        recorder.record(1, "bus", "bus.grant")
        recorder.record(2, "bus", "bus.request")
        assert [event.kind for event in recorder.events] == ["bus.grant"]

    def test_disabled_recorder_drops_silently(self):
        recorder = TimelineRecorder(capacity=5)
        recorder.enabled = False
        recorder.record(1, "bus", "bus.grant")
        assert len(recorder) == 0
        assert recorder.dropped == 0

    def test_clear_resets_ring_and_drop_count(self):
        recorder = TimelineRecorder(capacity=2)
        for cycle in range(5):
            recorder.record(cycle, "bus", "bus.grant")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0


class TestChromeTrace:
    def test_span_events_become_complete_slices(self):
        events = [
            TraceEvent(10, "bus", "bus.grant", {"master": 1, "duration": 5}),
            TraceEvent(20, "core0", "core.stretch", {"items": 3, "cycles": 7}),
            TraceEvent(40, "kernel", "kernel.jump", {"cycles": 12}),
        ]
        document = chrome_trace(events)
        spans = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert [span["name"] for span in spans] == [
            "bus.grant", "core.stretch", "kernel.jump",
        ]
        assert spans[0]["ts"] == 10 and spans[0]["dur"] == 5
        assert spans[1]["dur"] == 7

    def test_bus_grants_get_per_master_tracks(self):
        events = [
            TraceEvent(10, "bus", "bus.grant", {"master": 0, "duration": 5}),
            TraceEvent(20, "bus", "bus.grant", {"master": 1, "duration": 5}),
        ]
        document = chrome_trace(events)
        names = {
            e["args"]["name"]
            for e in document["traceEvents"]
            if e["name"] == "thread_name"
        }
        assert {"bus/master0", "bus/master1"} <= names

    def test_cba_balances_become_counter_tracks(self):
        events = [TraceEvent(5, "cba", "cba.drain", {"master": 0, "balances": [3, 9]})]
        document = chrome_trace(events)
        counters = [e for e in document["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "cba.budgets"
        assert counters[0]["args"] == {"core0": 3, "core1": 9}

    def test_other_events_become_instants(self):
        document = chrome_trace([TraceEvent(5, "bus", "bus.request", {"master": 2})])
        instants = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["args"] == {"master": 2}

    def test_payloads_are_forced_to_plain_json_types(self):
        document = chrome_trace(
            [TraceEvent(1, "bus", "bus.request", {"pending": (1, 2), "who": object()})]
        )
        json.dumps(document)  # must not raise


class TestContentionRecording:
    """Acceptance: a 4-core contention run yields a valid Chrome trace with
    spans for at least three component types."""

    def run_system(self, config, workload, obs, max_cycles=60_000):
        system = MulticoreSystem(config, seed=7, obs=obs)
        system.add_task(0, workload)
        for core in range(1, 4):
            system.add_greedy_contender(core)
        system.run(max_cycles=max_cycles)
        return system

    def test_contention_trace_has_spans_for_three_component_types(
        self, tmp_path, rp_platform, tiny_workload
    ):
        obs = ObservabilityConfig(timeline=True)
        system = self.run_system(rp_platform, tiny_workload, obs)
        target = write_chrome_trace(system.kernel.trace.events, tmp_path / "t.json")

        document = json.loads(target.read_text())
        assert isinstance(document["traceEvents"], list)
        span_kinds = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert {"bus.grant", "core.stretch", "kernel.jump"} <= span_kinds

    def test_cba_run_traces_credit_dynamics(self, cba_platform, tiny_workload):
        obs = ObservabilityConfig(timeline=True)
        system = self.run_system(cba_platform, tiny_workload, obs)
        kinds = {event.kind for event in system.kernel.trace.events}
        assert "cba.drain" in kinds
        assert "cba.refill" in kinds

    def test_ring_mode_bounds_the_recording(self, rp_platform, tiny_workload):
        obs = ObservabilityConfig(timeline=True, timeline_capacity=50)
        system = self.run_system(rp_platform, tiny_workload, obs)
        trace = system.kernel.trace
        assert len(trace.events) == 50
        assert trace.dropped > 0
