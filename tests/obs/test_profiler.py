"""Tests for kernel and campaign wall-clock profilers."""

import json

from repro.campaign.campaign import Campaign
from repro.campaign.executor import ParallelExecutor
from repro.campaign.jobs import seed_block_jobs
from repro.obs.profiler import CampaignProfiler, KernelProfiler, _HookProxy
from repro.platform.presets import rp_config
from repro.platform.system import MulticoreSystem
from repro.sim.config import ObservabilityConfig


def run_profiled_system(workload, max_cycles=60_000) -> MulticoreSystem:
    obs = ObservabilityConfig(profile_kernel=True)
    system = MulticoreSystem(rp_config(), seed=3, obs=obs)
    system.add_task(0, workload)
    for core in range(1, 4):
        system.add_greedy_contender(core)
    system.run(max_cycles=max_cycles)
    return system


class TestKernelProfiler:
    def test_enable_profiling_swaps_hooks_for_proxies(self, tiny_workload):
        system = run_profiled_system(tiny_workload)
        assert all(isinstance(c, _HookProxy) for c in system.kernel._tickers)

    def test_attribution_is_positive_and_bounded_by_wall(self, tiny_workload):
        profiler = run_profiled_system(tiny_workload).profiler
        assert profiler is not None
        assert profiler.runs == 1
        assert profiler.executed_cycles > 0
        assert 0.0 < profiler.attributed_seconds <= profiler.run_wall_seconds

    def test_component_seconds_covers_bus_and_cores(self, tiny_workload):
        profiler = run_profiled_system(tiny_workload).profiler
        components = profiler.component_seconds()
        assert "bus" in components
        assert any(name.startswith("core") for name in components)
        # Sorted highest first.
        assert list(components.values()) == sorted(components.values(), reverse=True)

    def test_report_roundtrips_through_json(self, tiny_workload, tmp_path):
        profiler = run_profiled_system(tiny_workload).profiler
        target = profiler.write(tmp_path / "kernel_profile.json")
        report = json.loads(target.read_text())
        assert report["type"] == "kernel_profile"
        assert report["scheduler_seconds"] >= 0.0
        assert report["components"]


class TestCampaignProfiler:
    def test_phase_context_manager_accumulates(self):
        profiler = CampaignProfiler()
        with profiler.phase("store"):
            pass
        with profiler.phase("store"):
            pass
        assert profiler.events["store"] == 2
        assert profiler.seconds["store"] >= 0.0

    def test_coverage_is_zero_before_any_wall_measurement(self):
        profiler = CampaignProfiler()
        profiler.add("simulate", 1.0)
        assert profiler.coverage == 0.0

    def test_coverage_is_capped_at_one(self):
        profiler = CampaignProfiler()
        profiler.start(jobs=1, workers=1)
        profiler.finish()
        profiler.add("simulate", 1e9)
        assert profiler.coverage == 1.0

    def test_finish_writes_configured_output(self, tmp_path):
        target = tmp_path / "campaign_profile.json"
        profiler = CampaignProfiler(output_path=target)
        profiler.start(jobs=2, workers=1)
        profiler.finish()
        report = json.loads(target.read_text())
        assert report["type"] == "campaign_profile"
        assert report["jobs"] == 2
        assert set(report["phases"]) == set(CampaignProfiler.PHASES)

    def test_pool_campaign_attributes_most_of_the_wall_clock(self, tiny_workload):
        """Acceptance: the five phases cover (nearly) all of the pool's
        measured dispatch wall-clock."""
        jobs = seed_block_jobs(
            "tiny", "isolation", seed=5, num_runs=6,
            workload=tiny_workload, config=rp_config(), max_cycles=300_000,
        )
        profiler = CampaignProfiler()
        campaign = Campaign(executor=ParallelExecutor(max_workers=2), profiler=profiler)
        results = campaign.run(jobs)

        assert len(results) == len(jobs)
        assert profiler.wall_seconds > 0.0
        assert profiler.coverage >= 0.90
        assert profiler.events["spawn"] == 2  # two warmed workers
        assert profiler.events["dispatch"] > 0
        assert profiler.events["simulate"] > 0
        assert profiler.events["result"] == len(jobs)
        # Counter coverage: every batch is either a worker context-cache hit
        # or a miss, and the first batch a worker sees must miss.
        hits = profiler.counters.get("cache_hit", 0)
        misses = profiler.counters.get("cache_miss", 0)
        assert hits + misses == profiler.counters["batches"]
        assert misses >= 1
