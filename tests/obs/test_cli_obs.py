"""Smoke tests for the ``repro obs`` command group and campaign flags."""

import json

import pytest

from repro.cli import build_parser, main

RECORD_ARGS = ["--scale", "0.05", "--ring", "2000"]


def record(tmp_path, *extra):
    out = tmp_path / "artifacts"
    assert main(["obs", "record", "--out", str(out), *RECORD_ARGS, *extra]) == 0
    return out


def test_obs_requires_a_subcommand():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["obs"])


def test_record_writes_every_artifact(tmp_path, capsys):
    out = record(tmp_path)
    for name in (
        "timeline.json", "kernel_profile.json",
        "metrics.jsonl", "metrics.prom", "summary.json",
    ):
        assert (out / name).exists(), name
    stdout = capsys.readouterr().out
    assert "observability recording" in stdout
    assert "trace events" in stdout

    summary = json.loads((out / "summary.json").read_text())
    assert summary["cores"] == 4
    assert summary["trace_events"] > 0
    assert summary["metrics_series"] > 0


def test_timeline_command_summarises_the_recording(tmp_path, capsys):
    out = record(tmp_path)
    capsys.readouterr()
    assert main(["obs", "timeline", str(out / "timeline.json")]) == 0
    stdout = capsys.readouterr().out
    assert "bus.grant" in stdout


def test_profile_command_renders_kernel_profile(tmp_path, capsys):
    out = record(tmp_path)
    capsys.readouterr()
    assert main(["obs", "profile", str(out / "kernel_profile.json")]) == 0
    stdout = capsys.readouterr().out
    assert "bus" in stdout


def test_metrics_command_renders_both_formats(tmp_path, capsys):
    out = record(tmp_path)
    capsys.readouterr()
    for name in ("metrics.jsonl", "metrics.prom"):
        assert main(["obs", "metrics", str(out / name)]) == 0
        assert "bus" in capsys.readouterr().out


def test_campaign_profile_and_metrics_flags(tmp_path, capsys):
    profile = tmp_path / "profile.json"
    metrics = tmp_path / "metrics.jsonl"
    assert main([
        "mbpta", "canrdr", "--runs", "20", "--scale", "0.05", "--quiet",
        "--profile", str(profile), "--metrics", str(metrics),
    ]) == 0
    capsys.readouterr()

    report = json.loads(profile.read_text())
    assert report["type"] == "campaign_profile"
    assert report["coverage"] >= 0.90

    rows = [json.loads(line) for line in metrics.read_text().splitlines()]
    names = {row["name"] for row in rows}
    assert "campaign.jobs" in names
    assert "campaign.batched_items" in names  # PR 4 counters, now exported

    assert main(["obs", "profile", str(profile)]) == 0
    assert "coverage" in capsys.readouterr().out
