"""Tests for the labelled metrics registry and its exporters."""

import json

import pytest

from repro.obs.exporters import to_jsonl, to_prometheus, write_metrics
from repro.obs.registry import MetricsRegistry, label_key, registries_merged
from repro.sim.stats import StatGroup


class TestLabelKey:
    def test_sorted_and_stringified(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_order_insensitive(self):
        assert label_key({"a": 1, "b": 2}) == label_key({"b": 2, "a": 1})


class TestSeries:
    def test_same_name_different_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("grants", core=0).increment(2)
        registry.counter("grants", core=1).increment(5)
        assert registry.counter("grants", core=0).value == 2
        assert registry.counter("grants", core=1).value == 5
        assert len(registry) == 2

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.counter("grants", core=0, system="s").increment()
        registry.counter("grants", system="s", core=0).increment()
        assert registry.counter("grants", core=0, system="s").value == 2
        assert len(registry) == 1

    def test_each_kind_creates_lazily(self):
        registry = MetricsRegistry()
        registry.counter("c").increment()
        registry.gauge("g").set(3.0)
        registry.sample("s").add(1.0)
        registry.histogram("h").add(4)
        assert len(registry) == 4


class TestIngestion:
    def test_ingest_group_prefixes_and_accumulates(self):
        group = StatGroup("core0")
        group.counter("accesses").increment(7)
        group.sample("latency").add(3.0)
        group.histogram("wait").add(2)

        registry = MetricsRegistry()
        registry.ingest_group(group, prefix="core.", core=0)
        registry.ingest_group(group, prefix="core.", core=0)  # second run, same labels
        assert registry.counter("core.accesses", core=0).value == 14
        assert registry.sample("core.latency", core=0).count == 2
        assert registry.histogram("core.wait", core=0).frequency(2) == 2

    def test_ingest_values_skips_non_numeric_and_bools(self):
        registry = MetricsRegistry()
        registry.ingest_values(
            {"accesses": 5, "name": "core0", "finished": True, "ratio": 2.9},
            prefix="core.",
            core=0,
        )
        snapshot = registry.snapshot()
        names = {row["name"] for row in snapshot}
        assert names == {"core.accesses", "core.ratio"}
        assert registry.counter("core.accesses", core=0).value == 5
        assert registry.counter("core.ratio", core=0).value == 2  # truncated to int


class TestMerge:
    def build(self, grants: int, level: float) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("grants", core=0).increment(grants)
        registry.gauge("budget", core=0).set(level)
        registry.sample("latency", core=0).add(float(grants))
        registry.histogram("wait", core=0).add(grants)
        return registry

    def test_merge_folds_every_kind(self):
        left = self.build(2, 1.0)
        left.merge(self.build(3, 9.0))
        assert left.counter("grants", core=0).value == 5
        assert left.gauge("budget", core=0).value == 9.0  # last writer wins
        assert left.sample("latency", core=0).count == 2
        assert left.histogram("wait", core=0).count == 2
        assert len(left) == 4

    def test_registries_merged_leaves_inputs_untouched(self):
        first = self.build(2, 1.0)
        second = self.build(3, 9.0)
        merged = registries_merged([first, second])
        assert merged.counter("grants", core=0).value == 5
        assert first.counter("grants", core=0).value == 2
        assert second.counter("grants", core=0).value == 3


class TestSnapshot:
    def test_rows_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z.last").increment()
        registry.counter("a.first").increment()
        names = [row["name"] for row in registry.snapshot()]
        assert names == sorted(names)

    def test_mutating_snapshot_does_not_touch_registry(self):
        registry = MetricsRegistry()
        registry.counter("grants", core=0).increment(2)
        snapshot = registry.snapshot()
        snapshot[0]["value"] = 999
        snapshot[0]["labels"]["core"] = "7"
        assert registry.counter("grants", core=0).value == 2
        assert registry.snapshot()[0]["value"] == 2

    def test_later_updates_do_not_touch_old_snapshots(self):
        registry = MetricsRegistry()
        registry.histogram("wait").add(1)
        snapshot = registry.snapshot()
        registry.histogram("wait").add(50)
        assert snapshot[0]["stats"]["count"] == 1
        assert snapshot[0]["buckets"] == [[1, 1]]


class TestExporters:
    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("bus.grants", system="s").increment(4)
        registry.gauge("bus.utilization", system="s").set(0.5)
        registry.sample("job_seconds", label="rp").add(2.0)
        registry.histogram("wait_cycles", system="s").add(3, weight=2)
        registry.histogram("wait_cycles", system="s").add(9)
        return registry

    def test_jsonl_roundtrips_each_row(self):
        text = to_jsonl(self.build())
        rows = [json.loads(line) for line in text.splitlines()]
        assert len(rows) == 4
        by_name = {row["name"]: row for row in rows}
        assert by_name["bus.grants"]["value"] == 4
        assert by_name["wait_cycles"]["buckets"] == [[3, 2], [9, 1]]

    def test_empty_registry_exports_empty_text(self):
        assert to_jsonl(MetricsRegistry()) == ""
        assert to_prometheus(MetricsRegistry()) == ""

    def test_prometheus_counters_gauges_and_summaries(self):
        text = to_prometheus(self.build())
        assert "# TYPE bus_grants counter" in text
        assert 'bus_grants{system="s"} 4' in text
        assert "# TYPE bus_utilization gauge" in text
        assert 'job_seconds_count{label="rp"} 1' in text
        assert 'job_seconds_sum{label="rp"} 2.0' in text

    def test_prometheus_histogram_buckets_are_cumulative(self):
        text = to_prometheus(self.build())
        assert 'wait_cycles_bucket{le="3",system="s"} 2' in text
        assert 'wait_cycles_bucket{le="9",system="s"} 3' in text
        assert 'wait_cycles_bucket{le="+Inf",system="s"} 3' in text
        assert 'wait_cycles_count{system="s"} 3' in text

    @pytest.mark.parametrize(
        "filename, prometheus",
        [("metrics.jsonl", False), ("metrics.prom", True), ("metrics.txt", True)],
    )
    def test_write_metrics_dispatches_on_extension(self, tmp_path, filename, prometheus):
        target = write_metrics(self.build(), tmp_path / filename)
        text = target.read_text()
        assert ("# TYPE" in text) is prometheus
