"""Tests for the performance metrics helpers."""

import pytest

from repro.analysis.metrics import (
    bandwidth_shares_from_cycles,
    mean_with_confidence,
    normalised_execution_times,
    slot_shares_from_grants,
    slowdown,
)
from repro.sim.errors import AnalysisError


def test_slowdown_is_a_simple_ratio():
    assert slowdown(28_000, 10_000) == pytest.approx(2.8)
    with pytest.raises(AnalysisError):
        slowdown(1.0, 0.0)


def test_normalised_execution_times_uses_the_named_baseline():
    values = {"RP-ISO": 10_000.0, "RP-CON": 33_400.0, "CBA-CON": 23_400.0}
    normalised = normalised_execution_times(values, "RP-ISO")
    assert normalised["RP-ISO"] == 1.0
    assert normalised["RP-CON"] == pytest.approx(3.34)
    with pytest.raises(AnalysisError):
        normalised_execution_times(values, "missing")


def test_mean_with_confidence_basic_properties():
    stats = mean_with_confidence([10.0, 12.0, 8.0, 10.0])
    assert stats.mean == pytest.approx(10.0)
    assert stats.count == 4
    assert stats.low < stats.mean < stats.high


def test_mean_with_confidence_single_sample_has_zero_width():
    stats = mean_with_confidence([5.0])
    assert stats.half_width == 0.0


def test_mean_with_confidence_empty_rejected():
    with pytest.raises(AnalysisError):
        mean_with_confidence([])


def test_shares_sum_to_one_and_handle_zero_totals():
    assert sum(bandwidth_shares_from_cycles([10, 30, 60, 0])) == pytest.approx(1.0)
    assert bandwidth_shares_from_cycles([0, 0]) == [0.0, 0.0]
    assert slot_shares_from_grants([5, 5]) == [0.5, 0.5]
    assert slot_shares_from_grants([0, 0, 0]) == [0.0, 0.0, 0.0]


def test_paper_example_shares():
    """The Section II example: alternating 5-cycle and 45-cycle requests give
    a 10% / 90% cycle split despite a 50% / 50% slot split."""
    assert bandwidth_shares_from_cycles([5 * 100, 45 * 100]) == [0.1, 0.9]
    assert slot_shares_from_grants([100, 100]) == [0.5, 0.5]
