"""Tests for the text report formatting."""

from repro.analysis.reporting import format_figure1_table, format_key_values, format_table


def test_format_table_aligns_columns_and_formats_floats():
    text = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2.0]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.235" in text
    assert "2.000" in text
    assert len(lines) == 4  # header, separator, two rows


def test_format_table_handles_non_float_cells():
    text = format_table(["k", "v"], [["x", 10], ["y", "text"]])
    assert "text" in text
    assert "10" in text


def test_format_figure1_table_has_one_row_per_benchmark():
    slowdowns = {
        "matrix": {"RP-ISO": 1.0, "RP-CON": 3.34},
        "canrdr": {"RP-ISO": 1.0, "RP-CON": 1.80},
    }
    text = format_figure1_table(slowdowns, ["RP-ISO", "RP-CON"])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[2].startswith("canrdr")  # rows sorted by benchmark name
    assert "3.340" in text


def test_format_figure1_table_missing_config_shows_nan():
    text = format_figure1_table({"matrix": {"RP-ISO": 1.0}}, ["RP-ISO", "CBA-CON"])
    assert "nan" in text


def test_format_key_values_with_title():
    text = format_key_values({"runs": 100, "iid_ok": True}, title="summary")
    assert text.splitlines()[0] == "summary"
    assert "runs" in text and "100" in text
