"""Tests for the fairness indices."""

import pytest

from repro.analysis.fairness import fairness_report, jain_index, max_min_ratio
from repro.sim.errors import AnalysisError


def test_jain_index_perfectly_fair_and_unfair():
    assert jain_index([10, 10, 10, 10]) == pytest.approx(1.0)
    assert jain_index([100, 0, 0, 0]) == pytest.approx(0.25)


def test_jain_index_intermediate_value():
    assert jain_index([1, 2, 3, 4]) == pytest.approx(100 / (4 * 30))


def test_jain_index_edge_cases():
    assert jain_index([0, 0, 0]) == 1.0
    with pytest.raises(AnalysisError):
        jain_index([])
    with pytest.raises(AnalysisError):
        jain_index([-1, 2])


def test_max_min_ratio():
    assert max_min_ratio([10, 10]) == 1.0
    assert max_min_ratio([90, 10]) == 9.0
    assert max_min_ratio([10, 0]) == float("inf")
    assert max_min_ratio([0, 0]) == 1.0
    with pytest.raises(AnalysisError):
        max_min_ratio([])


def test_fairness_report_contrasts_slots_and_cycles():
    """The paper's motivating imbalance: equal slots, 10%/90% cycles."""
    report = fairness_report(grants_per_core=[100, 100], cycles_per_core=[500, 4500])
    assert report.slot_jain == pytest.approx(1.0)
    assert report.cycle_jain < 0.7
    assert report.slot_max_min == 1.0
    assert report.cycle_max_min == 9.0
    assert report.as_dict()["cycles_per_core"] == [500, 4500]


def test_fairness_report_requires_matching_lengths():
    with pytest.raises(AnalysisError):
        fairness_report([1, 2], [1, 2, 3])
