"""Tests for the contender agents used in contention scenarios."""

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.ports import FixedLatencySlave
from repro.core.cba import CreditBasedArbiter
from repro.sim.config import CBAParameters
from repro.sim.kernel import Kernel
from repro.workloads.contender import GreedyContender, WCETModeContender


def build_bus(use_cba=False, num_masters=2, latency=56):
    kernel = Kernel()
    base = RoundRobinArbiter(num_masters)
    arbiter = base
    cba = None
    if use_cba:
        cba = CreditBasedArbiter(base, CBAParameters(max_latency=56, num_cores=num_masters))
        arbiter = cba
    bus = SharedBus(
        "bus", num_masters=num_masters, arbiter=arbiter,
        slave=FixedLatencySlave(latency), max_latency=56,
    )
    return kernel, bus, cba


class TestGreedyContender:
    def test_keeps_exactly_one_request_outstanding(self):
        kernel, bus, _ = build_bus()
        contender = GreedyContender("c1", 1, bus)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(200)
        # 200 cycles / 56-cycle transactions -> 3 completed, a 4th in flight.
        assert contender.requests_completed == 3
        assert contender.requests_issued == 4

    def test_saturates_an_otherwise_idle_bus(self):
        kernel, bus, _ = build_bus()
        contender = GreedyContender("c1", 1, bus)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(300)
        assert bus.utilization() > 0.95

    def test_reset_clears_progress(self):
        kernel, bus, _ = build_bus()
        contender = GreedyContender("c1", 1, bus)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(60)
        contender.reset()
        assert contender.requests_issued == 0
        assert contender.requests_completed == 0


class TestWCETModeContender:
    def test_does_not_compete_while_tua_is_silent(self):
        kernel, bus, cba = build_bus(use_cba=True)
        contender = WCETModeContender("c1", 1, bus, tua_request_ready=lambda: False, cba=cba)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(100)
        assert contender.requests_issued == 0
        assert bus.utilization() == 0.0

    def test_competes_when_tua_has_a_request_and_budget_is_full(self):
        kernel, bus, cba = build_bus(use_cba=True)
        contender = WCETModeContender("c1", 1, bus, tua_request_ready=lambda: True, cba=cba)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(60)
        assert contender.requests_issued >= 1
        assert contender.requests_completed >= 1

    def test_budget_gating_limits_request_rate_under_cba(self):
        """After a 56-cycle grant the contender must wait for its budget to
        refill before competing again.  With two cores the net drain is one
        scaled unit per busy cycle, so the sustainable period is about
        56 (use) + 57 (recovery) cycles per request."""
        kernel, bus, cba = build_bus(use_cba=True)
        contender = WCETModeContender("c1", 1, bus, tua_request_ready=lambda: True, cba=cba)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(1000)
        assert contender.requests_completed <= 1000 // 110 + 1
        # ...and well below the unconstrained rate of one per 56 cycles.
        assert contender.requests_completed < 1000 // 56

    def test_without_cba_budget_condition_is_trivially_true(self):
        kernel, bus, _ = build_bus(use_cba=False)
        contender = WCETModeContender("c1", 1, bus, tua_request_ready=lambda: True, cba=None)
        kernel.register(contender)
        kernel.register(bus)
        kernel.step(300)
        assert contender.requests_completed >= 4
