"""Tests for the generic synthetic workload profiles."""

import numpy as np

from repro.workloads.synthetic import (
    bus_hog_workload,
    cpu_bound_workload,
    mixed_workload,
    short_request_workload,
    streaming_workload,
)


def test_streaming_workload_has_no_compute_gap_and_huge_working_set():
    spec = streaming_workload()
    assert spec.mean_compute_gap == 0.0
    assert spec.working_set_bytes >= 1024 * 1024
    assert spec.write_fraction == 0.0


def test_cpu_bound_workload_is_compute_dominated():
    spec = cpu_bound_workload()
    assert spec.mean_compute_gap >= 20
    assert spec.working_set_bytes <= 4 * 1024


def test_bus_hog_issues_atomics_back_to_back():
    spec = bus_hog_workload()
    assert spec.mean_compute_gap == 0.0
    assert spec.atomic_fraction > 0


def test_short_request_workload_matches_illustrative_tua_profile():
    spec = short_request_workload()
    assert spec.mean_compute_gap <= 6
    assert spec.write_fraction == 0.0
    assert spec.working_set_bytes <= 8 * 1024


def test_custom_sizes_and_names_respected():
    spec = streaming_workload(num_accesses=123, name="bg")
    assert spec.num_accesses == 123
    assert spec.name == "bg"


def test_all_profiles_generate_valid_traces():
    rng = np.random.default_rng(1)
    for spec in (
        streaming_workload(num_accesses=50),
        cpu_bound_workload(num_accesses=50),
        bus_hog_workload(num_accesses=50),
        short_request_workload(num_accesses=50),
        mixed_workload(num_accesses=50),
    ):
        items = list(spec.generate_items(rng))
        assert sum(1 for item in items if item.access is not None) == 50
