"""Worker-side trace-column cache: detection, replay identity, counters.

The cache only ever serves specs whose trace is provably draw-free
(:attr:`WorkloadSpec.deterministic_trace`), so replaying cached columns is
bit-identical by construction — these tests pin the detection predicate,
the identity, and the hit/miss accounting the batch workers report.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.base import (
    AddressPattern,
    WorkloadSpec,
    enable_trace_column_cache,
    trace_column_cache_stats,
)


@pytest.fixture()
def trace_cache():
    """Enable the cache for one test, always disable it afterwards."""
    enable_trace_column_cache(True)
    yield
    enable_trace_column_cache(False)


def _deterministic_spec(**overrides) -> WorkloadSpec:
    fields = dict(
        name="det",
        num_accesses=64,
        working_set_bytes=2048,
        mean_compute_gap=5.0,
        gap_variability=0.0,  # fixed gaps
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=1.0,  # pure writes: kind draw outcome is fixed
        hot_fraction=0.0,  # no hot-region redirection
    )
    fields.update(overrides)
    return WorkloadSpec(**fields)


def test_deterministic_trace_detection(tiny_workload):
    assert _deterministic_spec().deterministic_trace
    assert _deterministic_spec(write_fraction=0.0).deterministic_trace
    assert _deterministic_spec(mean_compute_gap=0.0, gap_variability=0.4).deterministic_trace
    # Any remaining draw dependence disqualifies the spec:
    assert not _deterministic_spec(gap_variability=0.4).deterministic_trace
    assert not _deterministic_spec(write_fraction=0.5).deterministic_trace
    assert not _deterministic_spec(hot_fraction=0.3).deterministic_trace
    assert not _deterministic_spec(pattern=AddressPattern.RANDOM).deterministic_trace
    # The shared test workload mixes reads/writes with a hot region.
    assert not tiny_workload.deterministic_trace


def test_cached_columns_are_bit_identical_and_counted(trace_cache):
    spec = _deterministic_spec()
    reference = spec.materialize_trace(np.random.default_rng(0))
    assert trace_column_cache_stats() == (0, 1)
    for seed in (1, 2):
        replay = spec.materialize_trace(np.random.default_rng(seed))
        assert np.array_equal(replay.compute_gaps, reference.compute_gaps)
        assert np.array_equal(replay.addresses, reference.addresses)
        assert np.array_equal(replay.kinds, reference.kinds)
    assert trace_column_cache_stats() == (2, 1)


def test_nondeterministic_specs_bypass_the_cache(trace_cache, tiny_workload):
    first = tiny_workload.materialize_trace(np.random.default_rng(3))
    second = tiny_workload.materialize_trace(np.random.default_rng(4))
    assert trace_column_cache_stats() == (0, 0)
    # Different seeds really did draw different traces — nothing was replayed.
    assert not np.array_equal(first.compute_gaps, second.compute_gaps)


def test_cache_is_disabled_by_default():
    spec = _deterministic_spec()
    spec.materialize_trace(np.random.default_rng(0))
    spec.materialize_trace(np.random.default_rng(1))
    assert trace_column_cache_stats() == (0, 0)
