"""Tests for the workload name registry."""

import pytest

from repro.sim.errors import WorkloadError
from repro.workloads.registry import SYNTHETIC_WORKLOADS, available_workloads, workload_by_name


def test_registry_contains_eembc_and_synthetic_names():
    names = available_workloads()
    assert "matrix" in names
    assert "streaming" in names
    assert names == sorted(names)


def test_lookup_prefers_eembc_then_synthetic():
    assert workload_by_name("cacheb").name == "cacheb"
    assert workload_by_name("bus_hog").name == "bus_hog"


def test_unknown_name_raises_workload_error():
    with pytest.raises(WorkloadError):
        workload_by_name("not_a_workload")


def test_synthetic_map_keys_match_spec_names():
    for name, spec in SYNTHETIC_WORKLOADS.items():
        assert name == spec.name
