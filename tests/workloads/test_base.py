"""Tests for the parametric workload specification."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bus.transaction import AccessType
from repro.sim.errors import WorkloadError
from repro.workloads.base import AddressPattern, WorkloadSpec


def collect(spec, seed=0):
    return list(spec.generate_items(np.random.default_rng(seed)))


class TestValidation:
    def test_defaults_are_valid(self):
        WorkloadSpec(name="ok")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_accesses=0),
            dict(working_set_bytes=0),
            dict(mean_compute_gap=-1),
            dict(gap_variability=2.0),
            dict(pattern="bogus"),
            dict(stride_bytes=0),
            dict(write_fraction=1.5),
            dict(write_fraction=0.8, atomic_fraction=0.4),
            dict(hot_region_bytes=0),
            dict(tail_compute_cycles=-1),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(WorkloadError):
            WorkloadSpec(name="bad", **kwargs)


class TestGeneration:
    def test_generates_requested_number_of_accesses(self):
        spec = WorkloadSpec(name="w", num_accesses=50)
        items = collect(spec)
        assert sum(1 for item in items if item.access is not None) == 50

    def test_tail_compute_item_appended(self):
        spec = WorkloadSpec(name="w", num_accesses=5, tail_compute_cycles=99)
        items = collect(spec)
        assert items[-1].access is None
        assert items[-1].compute_cycles == 99

    def test_addresses_stay_within_working_set(self):
        spec = WorkloadSpec(
            name="w", num_accesses=200, working_set_bytes=4096,
            pattern=AddressPattern.RANDOM, base_address=0x1000_0000,
        )
        for item in collect(spec):
            offset = item.access.address - 0x1000_0000
            assert 0 <= offset < 4096

    def test_zero_gap_produces_back_to_back_accesses(self):
        spec = WorkloadSpec(name="w", num_accesses=20, mean_compute_gap=0.0)
        assert all(item.compute_cycles == 0 for item in collect(spec))

    def test_constant_gap_when_variability_zero(self):
        spec = WorkloadSpec(name="w", num_accesses=20, mean_compute_gap=7.0, gap_variability=0.0)
        assert all(item.compute_cycles == 7 for item in collect(spec))

    def test_mean_gap_approximately_respected(self):
        spec = WorkloadSpec(
            name="w", num_accesses=3000, mean_compute_gap=10.0, gap_variability=0.8
        )
        gaps = [item.compute_cycles for item in collect(spec) if item.access is not None]
        assert np.mean(gaps) == pytest.approx(10.0, rel=0.25)

    def test_access_mix_follows_fractions(self):
        spec = WorkloadSpec(
            name="w", num_accesses=4000, write_fraction=0.3, atomic_fraction=0.1
        )
        items = [item for item in collect(spec) if item.access is not None]
        writes = sum(item.access.access is AccessType.WRITE for item in items)
        atomics = sum(item.access.access is AccessType.ATOMIC for item in items)
        assert writes / len(items) == pytest.approx(0.3, abs=0.05)
        assert atomics / len(items) == pytest.approx(0.1, abs=0.03)

    def test_hot_fraction_concentrates_accesses(self):
        spec = WorkloadSpec(
            name="w",
            num_accesses=2000,
            working_set_bytes=64 * 1024,
            pattern=AddressPattern.RANDOM,
            hot_fraction=0.8,
            hot_region_bytes=1024,
        )
        items = [item for item in collect(spec) if item.access is not None]
        in_hot = sum(
            item.access.address - spec.base_address < 1024 for item in items
        )
        assert in_hot / len(items) > 0.7

    def test_generation_is_deterministic_given_the_rng_seed(self):
        spec = WorkloadSpec(name="w", num_accesses=100, gap_variability=0.9)
        first = [(i.compute_cycles, i.access.address) for i in collect(spec, seed=4)]
        second = [(i.compute_cycles, i.access.address) for i in collect(spec, seed=4)]
        third = [(i.compute_cycles, i.access.address) for i in collect(spec, seed=5)]
        assert first == second
        assert first != third

    def test_pointer_chase_pattern_revisits_working_set(self):
        spec = WorkloadSpec(
            name="w", num_accesses=500, pattern=AddressPattern.POINTER_CHASE,
            working_set_bytes=2048, hot_fraction=0.0,
        )
        addresses = {item.access.address for item in collect(spec) if item.access}
        assert len(addresses) > 50  # walks many distinct locations

    def test_build_trace_is_replayable(self):
        spec = WorkloadSpec(name="w", num_accesses=10)
        trace = spec.build_trace(np.random.default_rng(0))
        first_pass = [trace.next_item() for _ in range(11)]
        trace.reset()
        second_pass = [trace.next_item() for _ in range(11)]
        assert first_pass[-1] is None and second_pass[-1] is None

    def test_with_updates_returns_modified_copy(self):
        spec = WorkloadSpec(name="w", num_accesses=10)
        bigger = spec.with_updates(num_accesses=99)
        assert bigger.num_accesses == 99
        assert spec.num_accesses == 10


class TestColumnarGeneration:
    def spec(self) -> WorkloadSpec:
        return WorkloadSpec(
            name="w",
            num_accesses=300,
            mean_compute_gap=6.0,
            gap_variability=0.5,
            write_fraction=0.3,
            atomic_fraction=0.1,
            hot_fraction=0.4,
            pattern=AddressPattern.STRIDED,
            tail_compute_cycles=12,
        )

    def test_generate_columns_is_bit_identical_to_generate_items(self):
        """The columnar generator must consume the RNG stream in exactly the
        item-at-a-time order, so both paths encode the same run."""
        from repro.cpu.trace import KIND_BY_ACCESS, KIND_NONE

        spec = self.spec()
        items = list(spec.generate_items(np.random.default_rng(42)))
        gaps, addresses, kinds = spec.generate_columns(np.random.default_rng(42))
        assert len(items) == len(gaps) == len(addresses) == len(kinds)
        for item, gap, address, kind in zip(items, gaps, addresses, kinds, strict=True):
            assert item.compute_cycles == gap
            if item.access is None:
                assert kind == KIND_NONE
            else:
                assert item.access.address == address
                assert KIND_BY_ACCESS[item.access.access] == kind

    def test_materialize_trace_equals_materializing_the_lazy_trace(self):
        spec = self.spec()
        direct = spec.materialize_trace(np.random.default_rng(9))
        walked = spec.build_trace(np.random.default_rng(9)).materialize()
        assert np.array_equal(direct.compute_gaps, walked.compute_gaps)
        assert np.array_equal(direct.addresses, walked.addresses)
        assert np.array_equal(direct.kinds, walked.kinds)

    def test_build_trace_materialize_flag(self):
        from repro.cpu.trace import MaterializedTrace

        spec = self.spec()
        assert isinstance(
            spec.build_trace(np.random.default_rng(0), materialize=True),
            MaterializedTrace,
        )
        assert not isinstance(
            spec.build_trace(np.random.default_rng(0)), MaterializedTrace
        )


@given(
    st.integers(min_value=1, max_value=300),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=0.5),
    st.sampled_from(AddressPattern.ALL),
)
@settings(max_examples=40, deadline=None)
def test_property_every_generated_item_is_well_formed(num, hot, writes, pattern):
    spec = WorkloadSpec(
        name="prop",
        num_accesses=num,
        write_fraction=writes,
        hot_fraction=hot,
        pattern=pattern,
        working_set_bytes=8192,
    )
    items = list(spec.generate_items(np.random.default_rng(0)))
    accesses = [item for item in items if item.access is not None]
    assert len(accesses) == num
    for item in items:
        assert item.compute_cycles >= 0
        if item.access is not None:
            assert item.access.address >= spec.base_address
