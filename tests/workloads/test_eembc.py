"""Tests for the EEMBC Autobench-like workload registry."""

import numpy as np
import pytest

from repro.sim.errors import WorkloadError
from repro.workloads.eembc import (
    EEMBC_AUTOBENCH,
    FIGURE1_BENCHMARKS,
    available_benchmarks,
    eembc_workload,
)


def test_figure1_benchmarks_are_present():
    assert set(FIGURE1_BENCHMARKS) == {"cacheb", "canrdr", "matrix", "tblook"}
    for name in FIGURE1_BENCHMARKS:
        assert name in EEMBC_AUTOBENCH


def test_suite_covers_the_autobench_kernels():
    assert len(EEMBC_AUTOBENCH) >= 12


def test_lookup_by_name_and_error_for_unknown():
    assert eembc_workload("matrix").name == "matrix"
    with pytest.raises(WorkloadError):
        eembc_workload("no_such_benchmark")


def test_available_benchmarks_sorted():
    names = available_benchmarks()
    assert names == sorted(names)


def test_every_spec_is_tagged_and_generates_a_trace():
    rng = np.random.default_rng(0)
    for name, spec in EEMBC_AUTOBENCH.items():
        assert "eembc" in spec.tags
        assert spec.description
        items = list(spec.generate_items(rng))
        assert sum(1 for item in items if item.access is not None) == spec.num_accesses


def test_matrix_is_the_most_bus_intensive_of_the_figure1_set():
    """The paper's ordering: matrix shows the largest contention slowdown, so
    its modelled request stream must be the densest of the four."""
    def density(name):
        spec = eembc_workload(name)
        return 1.0 / (spec.mean_compute_gap + 1.0)

    assert density("matrix") == max(density(n) for n in FIGURE1_BENCHMARKS)


def test_canrdr_is_the_least_bus_intensive_of_the_figure1_set():
    def bus_pressure(name):
        spec = eembc_workload(name)
        # Rough pressure proxy: access rate times the share of accesses that
        # cannot be satisfied by the L1 (writes always go through).
        return (spec.write_fraction + (1 - spec.hot_fraction)) / (spec.mean_compute_gap + 1)

    pressures = {name: bus_pressure(name) for name in FIGURE1_BENCHMARKS}
    assert pressures["canrdr"] == min(pressures.values())


def test_tblook_uses_pointer_chasing():
    assert eembc_workload("tblook").pattern == "pointer_chase"


def test_specs_fit_the_shared_l2_partition():
    """Working sets must fit a 32 KiB L2 partition so that steady-state
    behaviour is L2 hits, as on the paper's platform where EEMBC does not
    saturate the memory."""
    for name, spec in EEMBC_AUTOBENCH.items():
        assert spec.working_set_bytes <= 32 * 1024, name
