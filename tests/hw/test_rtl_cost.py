"""Tests for the structural RTL cost model."""

import pytest

from repro.hw.rtl_cost import (
    STRATIX_IV_ALUT_CAPACITY,
    arbiter_cost,
    cba_addon_cost,
    overhead_report,
    platform_cost,
)
from repro.sim.errors import ConfigurationError


def test_every_policy_has_a_cost_estimate():
    for policy in (
        "round_robin",
        "fifo",
        "tdma",
        "lottery",
        "random_permutations",
        "fixed_priority",
    ):
        estimate = arbiter_cost(policy)
        assert estimate.flip_flops >= 0
        assert estimate.luts > 0
        assert estimate.alut_equivalent > 0


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        arbiter_cost("quantum")
    with pytest.raises(ConfigurationError):
        arbiter_cost("round_robin", num_masters=0)
    with pytest.raises(ConfigurationError):
        cba_addon_cost(num_masters=0)


def test_cba_addon_counts_one_budget_counter_per_core():
    addon = cba_addon_cost(num_masters=4, max_latency=56)
    # 4 * 56 = 224 fits in 8 bits, as the paper's Table I states.
    assert addon.breakdown["budget_counters"][0] == 4 * 8
    assert addon.breakdown["comp_bits"] == (4, 4)


def test_addon_scales_with_core_count():
    assert cba_addon_cost(num_masters=8).flip_flops > cba_addon_cost(num_masters=4).flip_flops


def test_platform_cost_matches_reported_occupancy():
    platform = platform_cost()
    assert platform.alut_equivalent >= int(0.73 * STRATIX_IV_ALUT_CAPACITY)


def test_resource_estimates_can_be_added():
    total = arbiter_cost("round_robin") + cba_addon_cost()
    assert total.flip_flops == arbiter_cost("round_robin").flip_flops + cba_addon_cost().flip_flops


def test_overhead_report_reproduces_the_paper_claim():
    """Section IV-B: CBA adds far less than 0.1% to the FPGA occupancy."""
    report = overhead_report()
    assert report["claim_holds"] is True
    assert report["addon_vs_platform_percent"] < 0.1
    # The add-on is also the same order of magnitude as the arbiter itself —
    # a handful of counters and comparators, not a redesign.
    assert report["addon_vs_arbiter"] < 10.0


def test_fraction_of_board_is_small_for_arbiters():
    assert arbiter_cost("random_permutations").fraction_of_board() < 0.01
