"""Tests for the LFSR random bank (APRANDBANK stand-in)."""

import pytest

from repro.hw.prng import MAXIMAL_TAPS, GaloisLFSR, RandomBank
from repro.sim.errors import ConfigurationError


class TestGaloisLFSR:
    def test_deterministic_sequence_for_fixed_seed(self):
        a = GaloisLFSR(width=16, seed=0xACE1)
        b = GaloisLFSR(width=16, seed=0xACE1)
        assert [a.step() for _ in range(100)] == [b.step() for _ in range(100)]

    def test_zero_seed_is_nudged_to_nonzero(self):
        lfsr = GaloisLFSR(width=8, seed=0)
        assert lfsr.state != 0
        assert all(lfsr.step() != 0 for _ in range(50))

    def test_state_never_becomes_zero(self):
        lfsr = GaloisLFSR(width=8, seed=0x5A)
        assert all(lfsr.step() != 0 for _ in range(255))

    def test_maximal_period_for_8_bit(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        seen = set()
        for _ in range(lfsr.period):
            seen.add(lfsr.step())
        assert len(seen) == 255  # every non-zero state visited exactly once

    def test_bits_and_uniform_int_ranges(self):
        lfsr = GaloisLFSR(width=16, seed=3)
        assert 0 <= lfsr.bits(5) < 32
        for _ in range(50):
            assert 0 <= lfsr.uniform_int(7) < 7

    def test_uniform_int_covers_all_values(self):
        lfsr = GaloisLFSR(width=16, seed=3)
        assert {lfsr.uniform_int(4) for _ in range(200)} == {0, 1, 2, 3}

    def test_unknown_width_requires_explicit_taps(self):
        with pytest.raises(ConfigurationError):
            GaloisLFSR(width=12)
        GaloisLFSR(width=12, taps=0xC3A)  # fine with explicit taps

    def test_invalid_arguments_rejected(self):
        lfsr = GaloisLFSR(width=8, seed=1)
        with pytest.raises(ConfigurationError):
            lfsr.bits(0)
        with pytest.raises(ConfigurationError):
            lfsr.uniform_int(0)

    def test_reset_restores_initial_state(self):
        lfsr = GaloisLFSR(width=16, seed=0xBEEF)
        first = [lfsr.step() for _ in range(10)]
        lfsr.reset()
        assert [lfsr.step() for _ in range(10)] == first

    def test_default_taps_table_is_sane(self):
        assert set(MAXIMAL_TAPS) == {8, 16, 24, 32}


class TestRandomBank:
    def test_each_consumer_gets_its_own_lfsr(self):
        bank = RandomBank()
        assert bank.lfsr("arbiter") is bank.lfsr("arbiter")
        assert bank.lfsr("arbiter") is not bank.lfsr("cache")

    def test_random_words_differ_across_consumers(self):
        bank = RandomBank()
        assert bank.random_word("a") != bank.random_word("b")

    def test_permutation_is_valid(self):
        bank = RandomBank()
        for n in (1, 4, 8):
            assert sorted(bank.permutation("arbiter", n)) == list(range(n))

    def test_register_bits_grow_with_consumers(self):
        bank = RandomBank(width=32)
        bank.lfsr("a")
        bank.lfsr("b")
        assert bank.register_bits == 64

    def test_reset_restores_every_lfsr(self):
        bank = RandomBank()
        first = bank.random_word("x")
        bank.reset()
        assert bank.random_word("x") == first
