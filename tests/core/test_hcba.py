"""Tests for the heterogeneous CBA variants."""

from fractions import Fraction

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.core.hcba import (
    bandwidth_fractions,
    budget_cap_parameters,
    heterogeneous_share_parameters,
    make_hcba_arbiter,
)
from repro.sim.errors import ConfigurationError


class TestShareParameters:
    def test_paper_half_allocation(self):
        """The paper's H-CBA: the TuA recovers 1/2 cycle per cycle and each
        other core 1/6 — scaled shares 3 and 1 over a scale of 6."""
        params = heterogeneous_share_parameters(4, 56, favoured_core=0)
        assert params.replenish_shares == (3, 1, 1, 1)
        assert params.scale == 6
        assert params.scaled_full_budget == 6 * 56
        fractions = bandwidth_fractions(params)
        assert fractions[0] == Fraction(1, 2)
        assert fractions[1] == Fraction(1, 6)

    def test_other_favoured_core(self):
        params = heterogeneous_share_parameters(4, 56, favoured_core=2)
        assert params.replenish_shares == (1, 1, 3, 1)

    def test_arbitrary_fraction(self):
        params = heterogeneous_share_parameters(4, 56, 0, favoured_fraction=0.4)
        fractions = bandwidth_fractions(params)
        assert fractions[0] == Fraction(2, 5)
        assert sum(fractions) == 1

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            heterogeneous_share_parameters(4, 56, favoured_core=7)
        with pytest.raises(ConfigurationError):
            heterogeneous_share_parameters(1, 56, favoured_core=0)
        with pytest.raises(ConfigurationError):
            heterogeneous_share_parameters(4, 56, 0, favoured_fraction=1.0)
        with pytest.raises(ConfigurationError):
            heterogeneous_share_parameters(4, 56, 0, favoured_fraction=0.0)


class TestBudgetCapParameters:
    def test_cap_doubles_only_for_favoured_core(self):
        params = budget_cap_parameters(4, 56, favoured_core=1, cap_multiplier=2)
        full = 4 * 56
        assert params.budget_caps == (full, 2 * full, full, full)
        assert params.scale == 4

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            budget_cap_parameters(4, 56, favoured_core=9)
        with pytest.raises(ConfigurationError):
            budget_cap_parameters(4, 56, favoured_core=0, cap_multiplier=0)


class TestMakeHCBAArbiter:
    def test_shares_variant(self):
        arbiter = make_hcba_arbiter(RoundRobinArbiter(4), 4, 56, favoured_core=0)
        assert arbiter.params.replenish_shares == (3, 1, 1, 1)

    def test_cap_variant(self):
        arbiter = make_hcba_arbiter(
            RoundRobinArbiter(4), 4, 56, favoured_core=0, variant="cap", cap_multiplier=3
        )
        assert arbiter.params.budget_caps[0] == 3 * 4 * 56

    def test_unknown_variant_rejected(self):
        with pytest.raises(ConfigurationError):
            make_hcba_arbiter(RoundRobinArbiter(4), 4, 56, variant="nope")

    def test_cap_variant_allows_back_to_back_maxl_requests(self):
        """With a 2x budget cap the favoured core can pay for two back-to-back
        maximum-length transactions, which homogeneous CBA cannot."""
        arbiter = make_hcba_arbiter(
            RoundRobinArbiter(4), 4, 56, favoured_core=0, variant="cap", cap_multiplier=2
        )
        account = arbiter.credits[0]
        # Let the favoured core accumulate up to its doubled cap.
        for cycle in range(4 * 56 * 2):
            arbiter.cycle_update(cycle, holder=None)
        assert account.balance == 2 * 4 * 56
        # First MaxL transaction.
        for cycle in range(56):
            arbiter.cycle_update(cycle, holder=0)
        assert account.eligible  # still at or above the full budget
        # Second MaxL transaction straight away.
        for cycle in range(56):
            arbiter.cycle_update(cycle, holder=0)
        assert not account.eligible


class TestShareDynamics:
    def test_favoured_core_recovers_faster(self):
        arbiter = make_hcba_arbiter(RoundRobinArbiter(4), 4, 56, favoured_core=0)
        # Drain both core 0 and core 1 by a 6-cycle transaction each.
        for cycle in range(6):
            arbiter.cycle_update(cycle, holder=0)
        for cycle in range(6, 12):
            arbiter.cycle_update(cycle, holder=1)
        recovery_favoured = arbiter.credits[0].cycles_until_eligible()
        recovery_other = arbiter.credits[1].cycles_until_eligible()
        assert recovery_favoured < recovery_other
