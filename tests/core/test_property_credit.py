"""Property-based tests of the credit-account invariants.

Whatever sequence of grants the bus produces, three invariants must hold for
every credit account:

* the balance never leaves ``[0, cap]``;
* the balance never exceeds what replenishment alone could have produced
  (no credit is created out of thin air);
* conservation: balance equals the initial balance plus everything
  replenished minus everything drained.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.credit import CreditBank
from repro.sim.config import CBAParameters


# A schedule is a list of per-cycle holders (None = bus idle).
holder_schedules = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    min_size=1,
    max_size=400,
)


@given(holder_schedules)
@settings(max_examples=80, deadline=None)
def test_balances_stay_within_bounds(schedule):
    params = CBAParameters(max_latency=56, num_cores=4)
    bank = CreditBank(params)
    for holder in schedule:
        bank.step(holder)
        for account in bank.accounts:
            assert 0 <= account.balance <= account.cap


@given(holder_schedules)
@settings(max_examples=80, deadline=None)
def test_conservation_of_credit(schedule):
    params = CBAParameters(max_latency=56, num_cores=4)
    bank = CreditBank(params)
    initial = bank.balances()
    for holder in schedule:
        bank.step(holder)
    for start, account in zip(initial, bank.accounts):
        assert account.balance == start + account.total_replenished - account.total_drained


@given(holder_schedules, st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_busy_cycles_bounded_by_replenishment(schedule, num_cores):
    """A core can never have spent more cycles on the bus than its initial
    budget plus its replenishment allows — the mechanism that guarantees the
    cycle-fair bandwidth split."""
    params = CBAParameters(max_latency=56, num_cores=num_cores)
    bank = CreditBank(params)
    busy = [0] * num_cores
    for holder in schedule:
        holder = holder if holder is not None and holder < num_cores else None
        if holder is not None:
            busy[holder] += 1
        bank.step(holder)
    for core, account in enumerate(bank.accounts):
        spent = busy[core] * params.drain_per_busy_cycle
        earned = account.total_replenished + params.scaled_full_budget
        assert account.total_drained <= spent
        assert account.total_drained <= earned


@given(
    st.integers(min_value=1, max_value=56),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=56),
)
@settings(max_examples=60, deadline=None)
def test_recovery_time_is_n_minus_one_times_duration(duration, num_cores, max_latency):
    """After holding the bus for ``d`` cycles from a full budget, a core needs
    ``(N-1) * d + 1`` idle cycles to become eligible again: the net drain is
    (N-1)/N per busy cycle, except that in the first busy cycle the +1
    replenishment is lost to saturation (the counter was already full)."""
    if duration > max_latency:
        duration, max_latency = max_latency, duration
    params = CBAParameters(max_latency=max_latency, num_cores=num_cores)
    bank = CreditBank(params)
    for _ in range(duration):
        bank.step(holder=0)
    recovery = 0
    while not bank[0].eligible:
        bank.step(holder=None)
        recovery += 1
    assert recovery == (num_cores - 1) * duration + 1
