"""Property-based tests of the credit-account invariants.

Whatever sequence of grants the bus produces, three invariants must hold for
every credit account:

* the balance never leaves ``[0, cap]``;
* the balance never exceeds what replenishment alone could have produced
  (no credit is created out of thin air);
* conservation: balance equals the initial balance plus everything
  replenished minus everything drained.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.credit import CreditAccount, CreditBank
from repro.sim.config import CBAParameters


# A schedule is a list of per-cycle holders (None = bus idle).
holder_schedules = st.lists(
    st.one_of(st.none(), st.integers(min_value=0, max_value=3)),
    min_size=1,
    max_size=400,
)


@given(holder_schedules)
@settings(max_examples=80, deadline=None)
def test_balances_stay_within_bounds(schedule):
    params = CBAParameters(max_latency=56, num_cores=4)
    bank = CreditBank(params)
    for holder in schedule:
        bank.step(holder)
        for account in bank.accounts:
            assert 0 <= account.balance <= account.cap


@given(holder_schedules)
@settings(max_examples=80, deadline=None)
def test_conservation_of_credit(schedule):
    params = CBAParameters(max_latency=56, num_cores=4)
    bank = CreditBank(params)
    initial = bank.balances()
    for holder in schedule:
        bank.step(holder)
    for start, account in zip(initial, bank.accounts, strict=True):
        assert account.balance == start + account.total_replenished - account.total_drained


@given(holder_schedules, st.integers(min_value=2, max_value=6))
@settings(max_examples=40, deadline=None)
def test_busy_cycles_bounded_by_replenishment(schedule, num_cores):
    """A core can never have spent more cycles on the bus than its initial
    budget plus its replenishment allows — the mechanism that guarantees the
    cycle-fair bandwidth split."""
    params = CBAParameters(max_latency=56, num_cores=num_cores)
    bank = CreditBank(params)
    busy = [0] * num_cores
    for holder in schedule:
        holder = holder if holder is not None and holder < num_cores else None
        if holder is not None:
            busy[holder] += 1
        bank.step(holder)
    for core, account in enumerate(bank.accounts):
        spent = busy[core] * params.drain_per_busy_cycle
        earned = account.total_replenished + params.scaled_full_budget
        assert account.total_drained <= spent
        assert account.total_drained <= earned


# ----------------------------------------------------------------------
# Closed-form advance() vs repeated step()
# ----------------------------------------------------------------------
# advance(cycles, holder) promises exact equivalence to `cycles` step(holder)
# calls; the holder's closed form has three regimes (cap clip, linear drain,
# floor), so the strategies below deliberately produce caps above the full
# budget, heterogeneous shares, partial starting balances, and schedules that
# mix holder and no-holder stretches.


@st.composite
def cba_parameters(draw):
    num_cores = draw(st.integers(min_value=2, max_value=5))
    max_latency = draw(st.integers(min_value=1, max_value=56))
    shares = None
    if draw(st.booleans()):
        shares = tuple(
            draw(st.integers(min_value=1, max_value=6)) for _ in range(num_cores)
        )
    params = CBAParameters(
        max_latency=max_latency, num_cores=num_cores, replenish_shares=shares
    )
    caps = None
    if draw(st.booleans()):
        full = params.scaled_full_budget
        caps = tuple(
            full + draw(st.integers(min_value=0, max_value=3 * params.scale))
            for _ in range(num_cores)
        )
    return CBAParameters(
        max_latency=max_latency,
        num_cores=num_cores,
        replenish_shares=shares,
        budget_caps=caps,
    )


advance_schedules = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),
        st.one_of(st.none(), st.integers(min_value=0, max_value=4)),
    ),
    min_size=1,
    max_size=12,
)


def _account_state(bank):
    return [
        (acct.balance, acct.total_replenished, acct.total_drained)
        for acct in bank.accounts
    ]


@given(cba_parameters(), advance_schedules, st.data())
@settings(max_examples=120, deadline=None)
def test_advance_matches_repeated_step(params, schedule, data):
    """advance() (closed-form holder drain) is exactly `cycles` x step()."""
    bulk = CreditBank(params)
    stepped = CreditBank(params)
    # Partial starting balances, identical on both banks.
    for core in range(params.num_cores):
        balance = data.draw(
            st.integers(min_value=0, max_value=params.cap_for(core)),
            label=f"balance[{core}]",
        )
        bulk[core].reset(balance)
        stepped[core].reset(balance)
    for cycles, holder in schedule:
        holder = holder if holder is not None and holder < params.num_cores else None
        bulk.advance(cycles, holder)
        for _ in range(cycles):
            stepped.step(holder)
        assert _account_state(bulk) == _account_state(stepped)


@given(
    st.integers(min_value=1, max_value=40),   # full budget
    st.integers(min_value=0, max_value=60),   # cap headroom above full
    st.integers(min_value=1, max_value=50),   # replenish share
    st.integers(min_value=1, max_value=50),   # drain per cycle
    st.integers(min_value=0, max_value=250),  # cycles
    st.data(),
)
@settings(max_examples=150, deadline=None)
def test_advance_as_holder_matches_per_cycle_update(
    full, headroom, share, drain, cycles, data
):
    """The raw account closed form covers every regime combination — including
    share > drain and share > cap, which CBAParameters cannot produce but a
    directly built account can."""
    cap = full + headroom
    balance = data.draw(st.integers(min_value=0, max_value=cap), label="balance")
    account = CreditAccount(
        core_id=0,
        full_budget=full,
        cap=cap,
        replenish_share=share,
        drain_per_cycle=drain,
        balance=balance,
    )
    account.advance_as_holder(cycles)

    expected_balance, replenished, drained = balance, 0, 0
    for _ in range(cycles):
        new = min(expected_balance + share, cap)
        replenished += new - expected_balance
        paid = min(drain, new)
        drained += paid
        expected_balance = new - paid
    assert account.balance == expected_balance
    assert account.total_replenished == replenished
    assert account.total_drained == drained


@given(
    st.integers(min_value=1, max_value=56),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=56),
)
@settings(max_examples=60, deadline=None)
def test_recovery_time_is_n_minus_one_times_duration(duration, num_cores, max_latency):
    """After holding the bus for ``d`` cycles from a full budget, a core needs
    ``(N-1) * d + 1`` idle cycles to become eligible again: the net drain is
    (N-1)/N per busy cycle, except that in the first busy cycle the +1
    replenishment is lost to saturation (the counter was already full)."""
    if duration > max_latency:
        duration, max_latency = max_latency, duration
    params = CBAParameters(max_latency=max_latency, num_cores=num_cores)
    bank = CreditBank(params)
    for _ in range(duration):
        bank.step(holder=0)
    recovery = 0
    while not bank[0].eligible:
        bank.step(holder=None)
        recovery += 1
    assert recovery == (num_cores - 1) * duration + 1
