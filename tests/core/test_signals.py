"""Tests for the signal-level (Table I) arbiter model."""

import pytest

from repro.core.signals import ArbiterSignalModel
from repro.core.wcet_mode import OperatingMode
from repro.sim.errors import ConfigurationError


def make_model(**kwargs):
    defaults = dict(
        num_cores=4,
        max_latency=56,
        mode=OperatingMode.WCET_ESTIMATION,
        tua_request_duration=6,
        tua_initial_budget=0,
    )
    defaults.update(kwargs)
    return ArbiterSignalModel(**defaults)


class TestConstruction:
    def test_paper_defaults(self):
        model = make_model()
        assert model.full_budget == 224
        assert model.drain == 4
        assert model.budgets[0] == 0  # TuA starts with zero budget at analysis
        assert model.budgets[1] == 224

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            make_model(num_cores=1)
        with pytest.raises(ConfigurationError):
            make_model(tua_core=9)
        with pytest.raises(ConfigurationError):
            make_model(tua_request_duration=0)
        with pytest.raises(ConfigurationError):
            make_model(tua_initial_budget=500)


class TestWCETModeSignals:
    def test_contender_req_lines_always_set(self):
        model = make_model()
        snap = model.step(tua_request_ready=False)
        assert snap.requests[1:] == (True, True, True)
        assert snap.requests[0] is False

    def test_comp_set_only_when_budget_full_and_tua_requests(self):
        model = make_model()
        # TuA not requesting: contenders must not compete.
        snap = model.step(tua_request_ready=False)
        assert snap.competes[1:] == (False, False, False)
        # TuA requesting and contender budgets full: COMP bits go up (the
        # contender granted in this very cycle has its bit cleared again).
        snap = model.step(tua_request_ready=True)
        for core in (1, 2, 3):
            if core == snap.granted:
                assert snap.competes[core] is False
            else:
                assert snap.competes[core] is True

    def test_comp_cleared_when_contender_granted(self):
        model = make_model()
        snap = model.step(tua_request_ready=True)
        granted = snap.granted
        assert granted in (1, 2, 3)  # the TuA has no budget yet
        assert snap.competes[granted] is False

    def test_granted_contender_holds_bus_for_maxl(self):
        model = make_model()
        first = model.step(tua_request_ready=True)
        holder = first.bus_holder
        for _ in range(55):
            snap = model.step(tua_request_ready=True)
            assert snap.bus_holder == holder
        snap = model.step(tua_request_ready=True)
        assert snap.bus_holder != holder or snap.bus_holder is None

    def test_tua_with_zero_budget_cannot_be_granted(self):
        model = make_model()
        snap = model.step(tua_request_ready=True)
        assert snap.granted != 0

    def test_tua_granted_once_budget_recovered_with_no_contention(self):
        model = ArbiterSignalModel(
            num_cores=4,
            mode=OperatingMode.OPERATION,
            tua_request_duration=6,
            tua_initial_budget=0,
        )
        granted_cycle = None
        for cycle in range(300):
            snap = model.step(tua_request_ready=True)
            if snap.granted == 0:
                granted_cycle = cycle
                break
        # With zero initial budget and +1 per cycle, the TuA needs 224 cycles.
        assert granted_cycle == 224


class TestBudgetRule:
    def test_budget_increments_saturate(self):
        model = make_model()
        for _ in range(500):
            model.step(tua_request_ready=False)
        assert model.budgets[0] == 224

    def test_holder_budget_follows_table1_update(self):
        model = make_model(tua_initial_budget=224)
        before = list(model.budgets)
        snap = model.step(tua_request_ready=True)
        holder = snap.bus_holder
        assert holder is not None
        expected = max(0, min(before[holder] + 1, model.full_budget) - model.drain)
        assert snap.budgets[holder] == expected


class TestOperationMode:
    def test_comp_bits_always_set(self):
        model = make_model(mode=OperatingMode.OPERATION, tua_initial_budget=None)
        snap = model.step(tua_request_ready=False, contender_requests=[False] * 4)
        assert all(snap.competes[1:])

    def test_contender_req_follows_actual_requests(self):
        model = make_model(mode=OperatingMode.OPERATION, tua_initial_budget=None)
        snap = model.step(
            tua_request_ready=False, contender_requests=[False, True, False, False]
        )
        assert snap.requests == (False, True, False, False)


class TestDrivers:
    def test_run_tua_requests_completes_and_counts(self):
        model = make_model(tua_initial_budget=224)
        cycles = model.run_tua_requests(5, gap_cycles=4)
        assert model.tua_completed_requests == 5
        assert cycles > 0
        assert len(model.history) == cycles

    def test_signal_table_rows_have_expected_columns(self):
        model = make_model()
        model.step(tua_request_ready=True)
        rows = model.signal_table()
        assert len(rows) == 1
        row = rows[0]
        for column in ("cycle", "BUDG1", "REQ1", "COMP4", "granted", "holder"):
            assert column in row
