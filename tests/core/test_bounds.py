"""Tests for the analytical contention bounds (Section II numbers)."""

import pytest

from repro.core.bounds import (
    ContentionScenario,
    cycle_fair_execution_time,
    cycle_fair_wait,
    request_fair_execution_time,
    request_fair_wait,
    slowdown,
    worst_case_wait_cba,
    worst_case_wait_round_robin,
    worst_case_wait_tdma,
)


def test_paper_scenario_defaults():
    scenario = ContentionScenario()
    assert scenario.num_contenders == 3
    assert scenario.compute_cycles == 4000


def test_request_fair_numbers_match_the_paper():
    scenario = ContentionScenario()
    assert request_fair_wait(scenario) == 84
    assert request_fair_execution_time(scenario) == 94_000
    assert slowdown(request_fair_execution_time(scenario), scenario.isolation_cycles) == (
        pytest.approx(9.4)
    )


def test_cycle_fair_numbers_match_the_paper():
    scenario = ContentionScenario()
    assert cycle_fair_wait(scenario) == 18
    assert cycle_fair_execution_time(scenario) == 28_000
    assert slowdown(cycle_fair_execution_time(scenario), scenario.isolation_cycles) == (
        pytest.approx(2.8)
    )


def test_cycle_fair_slowdown_bounded_by_core_count():
    """The paper's headline claim: with cycle-fair sharing, the slowdown of a
    task that saturates the bus is at most the core count."""
    for cores in (2, 4, 8):
        scenario = ContentionScenario(
            isolation_cycles=10_000,
            tua_requests=1_000,
            tua_request_cycles=10,
            contender_request_cycles=56,
            num_cores=cores,
        )
        ratio = slowdown(cycle_fair_execution_time(scenario), scenario.isolation_cycles)
        assert ratio <= cores


def test_request_fair_slowdown_grows_with_contender_length():
    short = ContentionScenario(contender_request_cycles=10)
    long = ContentionScenario(contender_request_cycles=56)
    assert request_fair_execution_time(long) > request_fair_execution_time(short)


def test_slowdown_requires_positive_baseline():
    with pytest.raises(ValueError):
        slowdown(10, 0)


def test_worst_case_wait_round_robin():
    assert worst_case_wait_round_robin(4, 56) == 3 * 56 + 55


def test_worst_case_wait_tdma():
    assert worst_case_wait_tdma(4, 56) == 4 * 56 - 1


def test_worst_case_wait_cba_steady_state_and_first_request():
    steady = worst_case_wait_cba(4, 56, tua_request_cycles=6)
    assert steady == 3 * 6 + 55
    with_recovery = worst_case_wait_cba(4, 56, tua_request_cycles=6, initial_budget_cycles=0)
    assert with_recovery == steady + 4 * 56


def test_cba_wait_below_round_robin_wait_for_short_requests():
    assert worst_case_wait_cba(4, 56, 6) < worst_case_wait_round_robin(4, 56)
