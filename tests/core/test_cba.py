"""Tests for the CBA arbitration filter."""

import pytest

from repro.arbiters.fifo import FIFOArbiter
from repro.arbiters.round_robin import RoundRobinArbiter
from repro.core.cba import CreditBasedArbiter
from repro.sim.config import CBAParameters
from repro.sim.errors import ArbitrationError


def make_cba(max_latency=56, num_cores=4, base=None):
    params = CBAParameters(max_latency=max_latency, num_cores=num_cores)
    base = base if base is not None else RoundRobinArbiter(num_cores)
    return CreditBasedArbiter(base, params)


def test_base_size_must_match_parameters():
    params = CBAParameters(max_latency=56, num_cores=4)
    with pytest.raises(ArbitrationError):
        CreditBasedArbiter(RoundRobinArbiter(2), params)


def test_all_cores_start_eligible_and_delegate_to_base():
    cba = make_cba()
    assert cba.eligible_cores() == [0, 1, 2, 3]
    assert cba.arbitrate([1, 3], 0) in (1, 3)


def test_budget_blocked_core_is_filtered_out():
    cba = make_cba()
    cba.set_initial_budget(0, 0)
    assert cba.arbitrate([0, 1], 0) == 1


def test_no_eligible_requestor_blocks_the_bus_and_is_counted():
    cba = make_cba()
    cba.set_initial_budget(2, 0)
    assert cba.arbitrate([2], 0) is None
    assert cba.blocked_cycles == 1


def test_holder_budget_drains_and_recovers():
    cba = make_cba()
    # Simulate a 6-cycle transaction by core 1.  The net drain is 3 per busy
    # cycle plus 1 for the saturated first cycle: deficit 19.
    cba.on_grant(1, 6, 0)
    for cycle in range(6):
        cba.cycle_update(cycle, holder=1)
    assert cba.budget(1) == 224 - (6 * 3 + 1)
    assert not cba.credits[1].eligible
    for cycle in range(6, 6 + 18):
        cba.cycle_update(cycle, holder=None)
    assert not cba.credits[1].eligible
    cba.cycle_update(24, holder=None)
    assert cba.credits[1].eligible


def test_recovery_time_scales_with_transaction_length():
    cba = make_cba()
    for cycle in range(56):
        cba.cycle_update(cycle, holder=3)
    deficit = 224 - cba.budget(3)
    assert deficit == 56 * 3 + 1
    assert cba.credits[3].cycles_until_eligible() == deficit


def test_on_grant_and_on_request_are_forwarded_to_base():
    base = FIFOArbiter(4)
    cba = make_cba(base=base)
    cba.on_request(2, cycle=5)
    cba.on_request(1, cycle=7)
    assert cba.arbitrate([1, 2], 8) == 2
    cba.on_grant(2, 10, 8)
    assert base.grants_per_master[2] == 1
    assert cba.grants_per_master[2] == 1


def test_grant_accounting_tracks_cycles():
    cba = make_cba()
    cba.on_grant(0, 56, 0)
    cba.on_grant(1, 5, 60)
    assert cba.cycles_granted_per_master == [56, 5, 0, 0]


def test_reset_restores_budgets_and_counters():
    cba = make_cba()
    cba.on_grant(0, 56, 0)
    for cycle in range(10):
        cba.cycle_update(cycle, holder=0)
    cba.set_initial_budget(1, 0)
    cba.arbitrate([1], 11)
    cba.reset()
    assert cba.budgets() == [224] * 4
    assert cba.blocked_cycles == 0
    assert cba.grants_per_master == [0, 0, 0, 0]


def _saturated_cycle_shares(use_cba: bool, seed: int = 5) -> list[float]:
    """Drive a simple saturated bus loop and return per-core cycle shares.

    Core 0 issues 7-cycle requests, cores 1-3 issue 56-cycle requests; every
    core is always pending.  The base policy is random permutations, as on
    the paper's platform.
    """
    import numpy as np

    from repro.arbiters.random_permutations import RandomPermutationsArbiter

    base = RandomPermutationsArbiter(4, np.random.default_rng(seed))
    arbiter = base
    if use_cba:
        arbiter = CreditBasedArbiter(base, CBAParameters(max_latency=56, num_cores=4))
    durations = {0: 7, 1: 56, 2: 56, 3: 56}
    holder = None
    remaining = 0
    cycles_used = [0, 0, 0, 0]
    for cycle in range(60_000):
        if remaining == 0:
            holder = None
            choice = arbiter.arbitrate([0, 1, 2, 3], cycle)
            if choice is not None:
                arbiter.on_grant(choice, durations[choice], cycle)
                holder = choice
                remaining = durations[choice]
        if holder is not None:
            cycles_used[holder] += 1
            remaining -= 1
        arbiter.cycle_update(cycle, holder)
    total = sum(cycles_used)
    return [c / total for c in cycles_used]


def test_sustained_saturation_shares_cycles_fairly():
    """Under saturation with unequal request lengths, CBA moves the bandwidth
    split from slot fairness (the short-request core gets ~4% of the cycles)
    towards cycle fairness — the paper's central claim."""
    without_cba = _saturated_cycle_shares(use_cba=False)
    with_cba = _saturated_cycle_shares(use_cba=True)
    # Request-fair baseline: the short-request core receives roughly
    # 7 / (7 + 3*56) ~ 4% of the bus cycles.
    assert without_cba[0] < 0.06
    # CBA raises its share several-fold and bounds the imbalance.
    assert with_cba[0] > 2.5 * without_cba[0]
    assert with_cba[0] > 0.10
    assert max(with_cba) < 0.35
    assert max(with_cba) / min(with_cba) < 3.5
