"""Tests for the operating modes and the COMP-bit gate."""

from repro.core.wcet_mode import CompeteGate, OperatingMode


def test_operation_mode_gate_is_always_set():
    gate = CompeteGate(mode=OperatingMode.OPERATION)
    assert gate.compete
    gate.update(budget_full=False, tua_request_ready=False)
    assert gate.compete
    gate.on_granted()  # no effect outside WCET-estimation mode
    assert gate.compete


def test_wcet_mode_gate_requires_budget_and_tua_request():
    gate = CompeteGate(mode=OperatingMode.WCET_ESTIMATION, compete=False)
    gate.update(budget_full=True, tua_request_ready=False)
    assert not gate.compete
    gate.update(budget_full=False, tua_request_ready=True)
    assert not gate.compete
    gate.update(budget_full=True, tua_request_ready=True)
    assert gate.compete


def test_wcet_mode_gate_latches_until_granted():
    gate = CompeteGate(mode=OperatingMode.WCET_ESTIMATION, compete=False)
    gate.update(budget_full=True, tua_request_ready=True)
    # Conditions go away but the bit stays set until the grant clears it.
    gate.update(budget_full=False, tua_request_ready=False)
    assert gate.compete
    gate.on_granted()
    assert not gate.compete


def test_reset_restores_mode_dependent_default():
    wcet_gate = CompeteGate(mode=OperatingMode.WCET_ESTIMATION, compete=True)
    wcet_gate.reset()
    assert not wcet_gate.compete
    operation_gate = CompeteGate(mode=OperatingMode.OPERATION, compete=False)
    operation_gate.reset()
    assert operation_gate.compete


def test_mode_values_are_stable_strings():
    assert OperatingMode.OPERATION.value == "operation"
    assert OperatingMode.WCET_ESTIMATION.value == "wcet_estimation"
