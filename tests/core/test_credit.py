"""Tests for the credit (budget) accounts."""

import pytest

from repro.core.credit import CreditAccount, CreditBank
from repro.sim.config import CBAParameters
from repro.sim.errors import BudgetError


def make_account(balance=224, cap=224, share=1, drain=4):
    return CreditAccount(
        core_id=0,
        full_budget=224,
        cap=cap,
        replenish_share=share,
        drain_per_cycle=drain,
        balance=balance,
    )


class TestCreditAccount:
    def test_full_budget_is_eligible(self):
        assert make_account(balance=224).eligible

    def test_below_full_budget_is_not_eligible(self):
        assert not make_account(balance=223).eligible

    def test_replenish_saturates_at_cap(self):
        account = make_account(balance=223)
        account.replenish()
        assert account.balance == 224
        account.replenish()
        assert account.balance == 224
        assert account.total_replenished == 1

    def test_drain_subtracts_drain_per_cycle(self):
        account = make_account(balance=224)
        account.drain()
        assert account.balance == 220
        assert account.total_drained == 4

    def test_drain_floors_at_zero(self):
        account = make_account(balance=2)
        account.drain()
        assert account.balance == 0
        assert account.total_drained == 2

    def test_deficit_and_cycles_until_eligible(self):
        account = make_account(balance=200)
        assert account.deficit == 24
        assert account.cycles_until_eligible() == 24
        assert make_account(balance=224).cycles_until_eligible() == 0

    def test_cycles_until_eligible_with_larger_share(self):
        account = make_account(balance=200, share=3)
        assert account.cycles_until_eligible() == 8

    def test_reset_restores_balance_and_totals(self):
        account = make_account(balance=100)
        account.drain()
        account.reset()
        assert account.balance == 224
        assert account.total_drained == 0
        account.reset(balance=0)
        assert account.balance == 0

    def test_invalid_configuration_rejected(self):
        with pytest.raises(BudgetError):
            make_account(cap=100)
        with pytest.raises(BudgetError):
            make_account(balance=300)
        with pytest.raises(BudgetError):
            make_account(share=0)
        with pytest.raises(BudgetError):
            CreditAccount(0, full_budget=0, cap=1, replenish_share=1, drain_per_cycle=1)

    def test_reset_outside_cap_rejected(self):
        with pytest.raises(BudgetError):
            make_account().reset(balance=500)


class TestCreditBank:
    def test_paper_parameters_produce_224_budgets(self, cba_params):
        bank = CreditBank(cba_params)
        assert len(bank) == 4
        assert bank.balances() == [224, 224, 224, 224]
        assert bank.eligible_cores() == [0, 1, 2, 3]

    def test_step_replenishes_everyone_and_drains_holder(self, cba_params):
        bank = CreditBank(cba_params)
        bank.step(holder=2)
        # Holder: the +1 saturates (already full), then -4; others stay at 224.
        assert bank.balances() == [224, 224, 220, 224]

    def test_step_without_holder_only_replenishes(self, cba_params):
        bank = CreditBank(cba_params)
        bank[1].reset(balance=100)
        bank.step(holder=None)
        assert bank[1].balance == 101

    def test_one_maxl_transaction_drains_most_of_the_budget(self, cba_params):
        """Holding the bus for MaxL consecutive cycles drains a net
        ``MaxL * (N-1) + 1`` (the +1 replenishment of the first busy cycle is
        lost to saturation): 224 - (56*3 + 1) = 55 with the paper parameters."""
        bank = CreditBank(cba_params)
        for _ in range(56):
            bank.step(holder=0)
        assert bank[0].balance == 224 - (56 * 3 + 1)
        assert not bank[0].eligible

    def test_set_initial_budget(self, cba_params):
        bank = CreditBank(cba_params)
        bank.set_initial_budget(0, 0)
        assert bank[0].balance == 0
        assert bank.eligible_cores() == [1, 2, 3]

    def test_reset_restores_initial_budgets(self, cba_params):
        bank = CreditBank(cba_params)
        bank.step(holder=0)
        bank.reset()
        assert bank.balances() == [224] * 4

    def test_heterogeneous_shares(self):
        params = CBAParameters(max_latency=56, num_cores=4, replenish_shares=(3, 1, 1, 1))
        bank = CreditBank(params)
        assert bank[0].replenish_share == 3
        assert bank[0].drain_per_cycle == 6
        assert bank[0].full_budget == 6 * 56
