"""Tests for the i.i.d. test battery."""

import numpy as np
import pytest

from repro.mbpta.iid import (
    iid_test_battery,
    ks_identical_distribution_test,
    ljung_box_test,
    runs_test,
)
from repro.sim.errors import AnalysisError


@pytest.fixture
def iid_sample(rng):
    return rng.normal(loc=1000.0, scale=50.0, size=400)


@pytest.fixture
def trending_sample():
    # A strong deterministic trend: clearly not identically distributed.
    return np.linspace(0.0, 1000.0, 400) + np.random.default_rng(0).normal(0, 1, 400)


def test_iid_sample_passes_all_tests(iid_sample):
    results = iid_test_battery(iid_sample)
    assert len(results) == 3
    assert all(result.passed for result in results)


def test_trending_sample_fails_ks_and_ljung_box(trending_sample):
    assert not ks_identical_distribution_test(trending_sample).passed
    assert not ljung_box_test(trending_sample).passed


def test_alternating_sample_fails_runs_test():
    sample = np.array([0.0, 100.0] * 100)
    result = runs_test(sample)
    assert not result.passed


def test_autocorrelated_sample_fails_ljung_box(rng):
    noise = rng.normal(0, 1, 500)
    ar1 = np.zeros(500)
    for i in range(1, 500):
        ar1[i] = 0.9 * ar1[i - 1] + noise[i]
    assert not ljung_box_test(ar1).passed


def test_constant_sample_treated_as_degenerate_pass():
    sample = np.full(100, 42.0)
    assert runs_test(sample).passed
    assert ljung_box_test(sample).passed


def test_too_few_samples_rejected():
    with pytest.raises(AnalysisError):
        runs_test([1.0, 2.0, 3.0])
    with pytest.raises(AnalysisError):
        ks_identical_distribution_test(np.arange(5))


def test_result_dataclass_round_trips_to_dict(iid_sample):
    result = runs_test(iid_sample)
    data = result.as_dict()
    assert data["name"] == "runs_test"
    assert 0.0 <= data["p_value"] <= 1.0
    assert isinstance(data["passed"], bool)


def test_alpha_controls_strictness(iid_sample):
    relaxed = ks_identical_distribution_test(iid_sample, alpha=0.0001)
    assert relaxed.alpha == 0.0001
