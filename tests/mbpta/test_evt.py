"""Tests for block maxima extraction and the EVT pipeline."""

import numpy as np
import pytest

from repro.mbpta.evt import block_maxima, fit_evt, goodness_of_fit
from repro.mbpta.gumbel import fit_gumbel_moments
from repro.sim.errors import AnalysisError


def test_block_maxima_takes_the_maximum_of_each_block():
    samples = [1, 5, 2, 9, 3, 4, 8, 7, 6, 0]
    maxima = block_maxima(samples, block_size=5)
    assert list(maxima) == [9, 8]


def test_block_maxima_drops_incomplete_trailing_block():
    maxima = block_maxima(list(range(13)), block_size=5)
    assert list(maxima) == [4, 9]


def test_block_maxima_needs_two_complete_blocks():
    with pytest.raises(AnalysisError):
        block_maxima([1, 2, 3], block_size=5)
    with pytest.raises(AnalysisError):
        block_maxima([1, 2, 3, 4], block_size=0)


def test_goodness_of_fit_accepts_gumbel_data(rng):
    data = rng.gumbel(loc=50.0, scale=5.0, size=500)
    fit = fit_gumbel_moments(data)
    assert goodness_of_fit(data, fit).passed


def test_goodness_of_fit_rejects_wrong_model(rng):
    data = rng.uniform(0.0, 1.0, size=2000)
    from repro.mbpta.gumbel import GumbelFit

    wrong = GumbelFit(location=10.0, scale=5.0)
    assert not goodness_of_fit(data, wrong).passed


def test_fit_evt_pipeline_on_gumbel_like_data(rng):
    # Execution times whose block maxima are Gumbel-ish.
    data = rng.normal(10_000, 200, size=600)
    evt = fit_evt(data, block_size=10)
    assert evt.num_blocks == 60
    assert evt.fit.scale > 0
    assert evt.acceptable
    assert evt.as_dict()["block_size"] == 10


def test_fit_evt_handles_constant_tail():
    data = np.full(100, 5_000.0)
    evt = fit_evt(data, block_size=10)
    assert evt.fit.scale > 0  # degenerate tail widened instead of crashing


def test_moments_fallback_when_mle_disabled(rng):
    data = rng.gumbel(1000, 50, size=300)
    evt = fit_evt(data, block_size=10, use_mle=False)
    assert evt.fit.method == "moments"
