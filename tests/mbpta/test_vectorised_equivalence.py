"""Golden-value equivalence: vectorised analysis vs scalar references.

The vectorised MBPTA layer (one-pass Ljung–Box, Newton-MLE Gumbel fit,
vector pWCET grid) must reproduce what the straightforward scalar
implementations compute.  The scalar references live *here*, written as the
obvious per-lag / per-point Python loops (the pre-refactor implementations),
and every comparison is at float64 precision (tiny reassociation differences
of vectorised reductions only, bounded at 1e-12 relative).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy import stats

from repro.mbpta.gumbel import GumbelFit, fit_gumbel_mle, fit_gumbel_moments
from repro.mbpta.iid import iid_test_battery, ljung_box_test, runs_test
from repro.mbpta.pwcet import DEFAULT_EXCEEDANCE_GRID, PWCETCurve
from repro.mbpta.evt import fit_evt


@pytest.fixture
def samples(rng) -> np.ndarray:
    return rng.gumbel(loc=30_000.0, scale=600.0, size=1000)


# ----------------------------------------------------------------------
# Scalar reference implementations (the pre-vectorisation code paths)
# ----------------------------------------------------------------------
def _ljung_box_scalar(data: np.ndarray, lags: int = 10) -> float:
    """Per-lag Python loop over dot products (the original implementation)."""
    n = data.size
    lags = min(lags, n // 4)
    centred = data - data.mean()
    denominator = float(np.dot(centred, centred))
    q = 0.0
    for lag in range(1, lags + 1):
        autocorr = float(np.dot(centred[lag:], centred[:-lag])) / denominator
        q += autocorr * autocorr / (n - lag)
    return q * n * (n + 2)


def _gumbel_mle_scalar(data: np.ndarray, beta0: float) -> tuple[float, float]:
    """Scalar-loop Newton solve of the same likelihood equations."""
    values = [float(x) for x in data]
    n = len(values)
    minimum = min(values)
    mean = sum(values) / n
    beta = beta0
    for _ in range(100):
        sum_z = sum_xz = sum_zu = sum_xzu = 0.0
        for x in values:
            z = math.exp(-(x - minimum) / beta)
            u = (x - minimum) / (beta * beta)
            sum_z += z
            sum_xz += x * z
            sum_zu += z * u
            sum_xzu += x * z * u
        f = beta - mean + sum_xz / sum_z
        derivative = 1.0 + (sum_xzu * sum_z - sum_xz * sum_zu) / (sum_z * sum_z)
        step = f / derivative
        beta -= step
        if abs(step) <= 1e-12 * max(1.0, abs(beta)):
            break
    sum_z = sum(math.exp(-(x - minimum) / beta) for x in values)
    location = minimum - beta * math.log(sum_z / n)
    return location, beta


def _pwcet_grid_scalar(curve: PWCETCurve, grid) -> list[float]:
    """Per-point loop through the scalar wcet_at path."""
    return [curve.wcet_at(p) for p in grid]


# ----------------------------------------------------------------------
# Equivalence tests
# ----------------------------------------------------------------------
def test_ljung_box_matches_scalar_loop(samples):
    result = ljung_box_test(samples)
    reference_q = _ljung_box_scalar(np.asarray(samples, dtype=np.float64))
    assert result.statistic == pytest.approx(reference_q, rel=1e-12)
    assert result.p_value == pytest.approx(
        float(stats.chi2.sf(reference_q, df=10)), rel=1e-9
    )


def test_ljung_box_matches_scalar_loop_on_correlated_data(rng):
    # A strongly autocorrelated series: the vectorised path must agree on
    # failing inputs, not only on well-behaved i.i.d. ones.
    noise = rng.normal(0.0, 1.0, size=600)
    correlated = np.cumsum(noise) + 50.0
    result = ljung_box_test(correlated)
    assert result.statistic == pytest.approx(_ljung_box_scalar(correlated), rel=1e-12)
    assert not result.passed


def test_ljung_box_fft_branch_matches_scalar_loop(rng):
    """Many-lag analyses route through the FFT autocovariance sweep, which
    must agree with the per-lag dot products (looser bound: FFT round-off,
    still far inside statistical relevance)."""
    from repro.mbpta.iid import _AUTOCOVARIANCE_FFT_LAGS

    lags = _AUTOCOVARIANCE_FFT_LAGS * 2
    big = rng.gumbel(30_000.0, 600.0, size=4000)
    result = ljung_box_test(big, lags=lags)
    assert result.statistic == pytest.approx(
        _ljung_box_scalar(big, lags=lags), rel=1e-8, abs=1e-8
    )


def test_gumbel_newton_matches_scalar_newton(samples):
    maxima = np.asarray(samples, dtype=np.float64).reshape(100, 10).max(axis=1)
    guess = fit_gumbel_moments(maxima)
    fit = fit_gumbel_mle(maxima)
    ref_location, ref_scale = _gumbel_mle_scalar(maxima, guess.scale)
    assert fit.method == "mle"
    assert fit.location == pytest.approx(ref_location, rel=1e-12)
    assert fit.scale == pytest.approx(ref_scale, rel=1e-12)


def test_gumbel_newton_solves_the_likelihood_equations(samples):
    maxima = np.asarray(samples, dtype=np.float64).reshape(100, 10).max(axis=1)
    fit = fit_gumbel_mle(maxima)
    z = np.exp(-(maxima - maxima.min()) / fit.scale)
    scale_residual = fit.scale - maxima.mean() + float(np.dot(maxima, z) / z.sum())
    assert abs(scale_residual) < 1e-9 * fit.scale
    # Location equation: mu = -beta * log(mean(exp(-x / beta))).
    location = maxima.min() - fit.scale * math.log(float(z.mean()))
    assert fit.location == pytest.approx(location, rel=1e-12)


def test_gumbel_newton_agrees_with_scipy_optimiser(samples):
    maxima = np.asarray(samples, dtype=np.float64).reshape(100, 10).max(axis=1)
    fit = fit_gumbel_mle(maxima)
    guess = fit_gumbel_moments(maxima)
    scipy_loc, scipy_scale = stats.gumbel_r.fit(
        maxima, loc=guess.location, scale=guess.scale
    )
    # scipy's generic optimiser stops at ~1e-4 absolute; Newton refines the
    # same root to machine precision, so agreement is loose but real.
    assert fit.location == pytest.approx(float(scipy_loc), rel=1e-3)
    assert fit.scale == pytest.approx(float(scipy_scale), rel=1e-3)


def test_vector_value_at_exceedance_matches_scalar_path():
    fit = GumbelFit(location=30_000.0, scale=500.0)
    grid = np.array([0.5, 1e-3, 1e-6, 1e-9, 1e-12, 1e-15])
    vector = fit.value_at_exceedance(grid)
    scalar = [fit.value_at_exceedance(float(p)) for p in grid]
    assert vector == pytest.approx(scalar, rel=1e-15)


def test_pwcet_grid_matches_scalar_loop(samples):
    evt = fit_evt(samples, block_size=10)
    curve = PWCETCurve(evt=evt, observed_max=float(np.max(samples)))
    grid = np.asarray(DEFAULT_EXCEEDANCE_GRID)
    vector = curve.wcet_at(grid)
    scalar = _pwcet_grid_scalar(curve, DEFAULT_EXCEEDANCE_GRID)
    assert vector == pytest.approx(scalar, rel=1e-15)
    assert [bound for _, bound in curve.points()] == pytest.approx(scalar, rel=1e-15)


def test_battery_accepts_readonly_arrays_and_matches_lists(samples):
    frozen = np.asarray(samples, dtype=np.float64).copy()
    frozen.setflags(write=False)
    from_array = iid_test_battery(frozen)
    from_list = iid_test_battery([float(x) for x in samples])
    assert [t.as_dict() for t in from_array] == [t.as_dict() for t in from_list]


def test_runs_test_statistic_is_exact_under_both_input_forms(samples):
    frozen = np.asarray(samples, dtype=np.float64).copy()
    frozen.setflags(write=False)
    assert runs_test(frozen).statistic == runs_test(list(samples)).statistic
