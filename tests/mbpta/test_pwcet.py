"""Tests for the pWCET curve."""

import numpy as np
import pytest

from repro.mbpta.evt import fit_evt
from repro.mbpta.pwcet import DEFAULT_EXCEEDANCE_GRID, PWCETCurve
from repro.sim.errors import AnalysisError


@pytest.fixture
def curve(rng):
    samples = rng.gumbel(loc=20_000.0, scale=400.0, size=500)
    evt = fit_evt(samples, block_size=10)
    return PWCETCurve(evt=evt, observed_max=float(samples.max()))


def test_bound_grows_as_exceedance_shrinks(curve):
    bounds = [curve.wcet_at(p) for p in (1e-3, 1e-6, 1e-9, 1e-12)]
    assert bounds == sorted(bounds)
    assert bounds[-1] > bounds[0]


def test_bound_never_below_observed_maximum(curve):
    assert curve.wcet_at(0.5) >= curve.observed_max


def test_points_cover_the_default_grid(curve):
    points = curve.points()
    assert [p for p, _ in points] == list(DEFAULT_EXCEEDANCE_GRID)
    assert all(bound >= curve.observed_max for _, bound in points)


def test_exceedance_of_inverts_the_bound(curve):
    bound = curve.wcet_at(1e-6)
    assert curve.exceedance_of(bound) <= 1.1e-6


def test_exceedance_of_saturates_below_the_observed_maximum(curve):
    """Consistency with the observed-max clamp of wcet_at: a bound below
    something actually measured is exceeded with probability 1, not with the
    raw (non-dominating) model tail probability."""
    below = curve.observed_max - 1.0
    assert curve.exceedance_of(below) == 1.0
    assert curve.exceedance_of(curve.observed_max) < 1.0
    raw_model = curve.evt.fit.exceedance_probability(below)
    assert raw_model < 1.0  # the clamp is not vacuous


def test_exceedance_of_vector_matches_scalars(curve):
    bounds = np.array(
        [curve.observed_max - 5.0, curve.observed_max + 100.0, curve.wcet_at(1e-9)]
    )
    vector = curve.exceedance_of(bounds)
    assert list(vector) == [curve.exceedance_of(float(b)) for b in bounds]


def test_wcet_at_vector_matches_scalars(curve):
    grid = np.asarray(DEFAULT_EXCEEDANCE_GRID)
    vector = curve.wcet_at(grid)
    assert isinstance(vector, np.ndarray)
    assert list(vector) == [curve.wcet_at(float(p)) for p in grid]


def test_invalid_exceedance_rejected(curve):
    with pytest.raises(AnalysisError):
        curve.wcet_at(0.0)
    with pytest.raises(AnalysisError):
        curve.wcet_at(1.0)


def test_invalid_exceedance_array_rejected(curve):
    """The array path applies the same (0, 1) domain check as the scalar
    path instead of silently returning NaN/garbage bounds."""
    for bad in ([0.0, 1e-6], [1e-6, 1.0], [-1e-6], [2.0], [float("nan")]):
        with pytest.raises(AnalysisError):
            curve.wcet_at(np.asarray(bad))


def test_nan_bound_rejected_by_exceedance_of(curve):
    """A NaN bound compares False against the observed maximum, so without
    the explicit check it would bypass the dominance clamp and propagate."""
    with pytest.raises(AnalysisError):
        curve.exceedance_of(float("nan"))
    with pytest.raises(AnalysisError):
        curve.exceedance_of(np.array([curve.observed_max + 1.0, float("nan")]))


def test_as_dict_contains_grid_points(curve):
    data = curve.as_dict()
    assert "points" in data and "1e-12" in data["points"]
    assert data["observed_max"] == curve.observed_max
