"""Tests for the Gumbel distribution fitting."""

import math

import numpy as np
import pytest

from repro.mbpta.gumbel import GumbelFit, fit_gumbel_mle, fit_gumbel_moments
from repro.sim.errors import AnalysisError


@pytest.fixture
def gumbel_sample(rng):
    return rng.gumbel(loc=10_000.0, scale=250.0, size=3000)


def test_moments_fit_recovers_parameters(gumbel_sample):
    fit = fit_gumbel_moments(gumbel_sample)
    assert fit.location == pytest.approx(10_000.0, rel=0.02)
    assert fit.scale == pytest.approx(250.0, rel=0.1)
    assert fit.method == "moments"
    assert fit.sample_size == 3000


def test_mle_fit_recovers_parameters(gumbel_sample):
    fit = fit_gumbel_mle(gumbel_sample)
    assert fit.location == pytest.approx(10_000.0, rel=0.02)
    assert fit.scale == pytest.approx(250.0, rel=0.1)
    assert fit.method in ("mle", "moments")


def test_cdf_and_quantile_are_inverse():
    fit = GumbelFit(location=100.0, scale=10.0)
    for probability in (0.1, 0.5, 0.9, 0.999):
        assert fit.cdf(fit.quantile(probability)) == pytest.approx(probability, rel=1e-9)


def test_exceedance_probability_decreases_with_threshold():
    fit = GumbelFit(location=100.0, scale=10.0)
    assert fit.exceedance_probability(100) > fit.exceedance_probability(150)
    assert fit.exceedance_probability(150) > fit.exceedance_probability(200)


def test_value_at_exceedance_handles_tiny_probabilities():
    fit = GumbelFit(location=100.0, scale=10.0)
    bound_12 = fit.value_at_exceedance(1e-12)
    bound_15 = fit.value_at_exceedance(1e-15)
    assert bound_15 > bound_12 > fit.location
    # The asymptotic expansion: mu - beta * ln(p).
    assert bound_15 == pytest.approx(100.0 - 10.0 * math.log(1e-15), rel=1e-6)


def test_mean_formula():
    fit = GumbelFit(location=100.0, scale=10.0)
    assert fit.mean() == pytest.approx(100.0 + 0.5772156649 * 10.0)


def test_invalid_inputs_rejected():
    with pytest.raises(AnalysisError):
        GumbelFit(location=0.0, scale=0.0)
    with pytest.raises(AnalysisError):
        fit_gumbel_moments([1.0, 2.0])
    with pytest.raises(AnalysisError):
        fit_gumbel_moments(np.full(100, 7.0))
    with pytest.raises(AnalysisError):
        GumbelFit(location=0.0, scale=1.0).quantile(1.5)
    with pytest.raises(AnalysisError):
        GumbelFit(location=0.0, scale=1.0).value_at_exceedance(0.0)


def test_as_dict_round_trip(gumbel_sample):
    fit = fit_gumbel_moments(gumbel_sample)
    data = fit.as_dict()
    assert set(data) == {"location", "scale", "method", "sample_size"}
