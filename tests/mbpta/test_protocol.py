"""Tests for the end-to-end MBPTA protocol."""

import numpy as np
import pytest

from repro.mbpta.protocol import mbpta_from_samples, run_mbpta
from repro.sim.errors import AnalysisError


def test_mbpta_from_samples_produces_complete_result(rng):
    samples = rng.gumbel(30_000, 500, size=200)
    result = mbpta_from_samples(samples, block_size=10, metadata={"benchmark": "demo"})
    assert len(result.samples) == 200
    assert len(result.iid_tests) == 3
    assert result.iid_ok
    assert result.evt.acceptable
    assert result.observed_max == max(samples)
    assert result.wcet_at(1e-12) >= result.observed_max
    summary = result.summary()
    assert summary["benchmark"] == "demo"
    assert summary["runs"] == 200


def test_pwcet_bound_monotone_in_exceedance(rng):
    samples = rng.gumbel(30_000, 500, size=200)
    result = mbpta_from_samples(samples)
    assert result.wcet_at(1e-15) >= result.wcet_at(1e-9) >= result.wcet_at(1e-3)


def test_too_few_samples_rejected():
    with pytest.raises(AnalysisError):
        mbpta_from_samples([1.0] * 10)
    with pytest.raises(AnalysisError):
        run_mbpta(lambda run: 1.0, num_runs=5)


def test_run_mbpta_invokes_the_scenario_runner_once_per_run(rng):
    calls = []

    def scenario(run_index: int) -> float:
        calls.append(run_index)
        return float(10_000 + rng.gumbel(0, 100))

    result = run_mbpta(scenario, num_runs=40, block_size=5)
    assert calls == list(range(40))
    assert len(result.samples) == 40


def test_samples_are_held_as_a_readonly_array_without_copying(rng):
    source = np.asarray(rng.gumbel(30_000, 500, size=200), dtype=np.float64)
    result = mbpta_from_samples(source)
    assert isinstance(result.samples, np.ndarray)
    assert result.samples.dtype == np.float64
    # No copy: the held array is a view over the caller's buffer...
    assert result.samples.base is source or np.shares_memory(result.samples, source)
    # ...that cannot be written through, while the caller's array is untouched.
    assert not result.samples.flags.writeable
    assert source.flags.writeable
    with pytest.raises(ValueError):
        result.samples[0] = 0.0


def test_list_input_still_produces_the_same_summary(rng):
    values = [float(x) for x in rng.gumbel(30_000, 500, size=100)]
    from_list = mbpta_from_samples(values, block_size=10)
    from_array = mbpta_from_samples(np.asarray(values), block_size=10)
    assert from_list.summary() == from_array.summary()


def test_iid_flag_reflects_failing_tests():
    # A strongly trending sequence must be flagged as not i.i.d.
    samples = np.linspace(1_000, 2_000, 100) + np.random.default_rng(0).normal(0, 5, 100)
    result = mbpta_from_samples(samples, block_size=5)
    assert not result.iid_ok
