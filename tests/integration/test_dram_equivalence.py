"""Banked-DRAM equivalence matrix.

The banked DRAM model (row buffers, bank conflicts, FR-FCFS reordering) is
driven synchronously from the L2 bus slave at grant time, so it must be
*bit-identical* across every kernel execution mode — plain stepping,
event-aware fast-forward, the batch interpreter and the event-queue
scheduler — exactly like the fixed-latency model it generalises.  These
tests enforce that for both controller policies under real multi-core
contention, and guard against vacuity: the banked model must actually
diverge from the fixed model, and FR-FCFS must actually reorder.

The geometry is chosen so victim writebacks alias with their replacement
fetches: the L2 partition (4 KiB) spans exactly ``num_banks × row_bytes``
(4 × 1 KiB), so a dirty victim and the line that evicts it land in the same
bank but different rows — the FR-FCFS-vs-in-order decision point.
"""

from __future__ import annotations

import pytest

from repro.platform.system import MulticoreSystem
from repro.sim.config import BusTimings, CacheGeometry, MemoryConfig, PlatformConfig
from repro.workloads.base import AddressPattern, WorkloadSpec

MAX_CYCLES = 2_000_000

#: (fast_forward, event_queue, batch_interpreter, materialize_traces)
KERNEL_MODES = {
    "stepping": (False, False, False, False),
    "fast_forward": (True, False, False, True),
    "batch": (True, False, True, True),
    "event_queue": (True, True, True, True),
}

DIRTY_STRIDER = WorkloadSpec(
    name="dirty-strider",
    num_accesses=400,
    working_set_bytes=64 * 1024,
    mean_compute_gap=1.0,
    pattern=AddressPattern.STRIDED,
    stride_bytes=32,
    write_fraction=0.8,
)


def _config(policy: str, random_caches: bool = True) -> PlatformConfig:
    return PlatformConfig(
        num_cores=4,
        arbitration="round_robin",
        bus_timings=BusTimings(memory_latency=28, bus_overhead=0, max_latency=56),
        l1_geometry=CacheGeometry(size_bytes=512, line_bytes=32, associativity=2),
        l2_geometry=CacheGeometry(size_bytes=16 * 1024, line_bytes=32, associativity=4),
        l2_partitioned=True,
        random_caches=random_caches,
        memory=MemoryConfig(
            model="banked",
            num_banks=4,
            row_bytes=1024,
            row_hit_latency=16,
            row_miss_latency=24,
            row_conflict_latency=28,
            controller_policy=policy,
        ),
    )


def _run(config: PlatformConfig, mode: str, seed: int = 11, cores: int | None = None):
    fast_forward, event_queue, batch, materialize = KERNEL_MODES[mode]
    system = MulticoreSystem(
        config,
        seed=seed,
        run_index=0,
        label=f"dram-{mode}",
        fast_forward=fast_forward,
        event_queue=event_queue,
        batch_interpreter=batch,
        materialize_traces=materialize,
    )
    for core in range(cores if cores is not None else config.num_cores):
        system.add_task(core, DIRTY_STRIDER)
    return system.run(max_cycles=MAX_CYCLES)


def _snapshot(result) -> dict:
    return {
        "total_cycles": result.total_cycles,
        "core_counters": {
            core: counters.as_dict()
            for core, counters in sorted(result.core_counters.items())
        },
        "grants_per_core": list(result.grants_per_core),
        "cycles_per_core": list(result.cycles_per_core),
        "bus_utilization": result.bus_utilization,
        "l2_miss_rate": result.l2_miss_rate,
        "extra": result.extra,
    }


@pytest.mark.parametrize("policy", ["in_order", "frfcfs"])
def test_banked_dram_bit_identical_across_kernel_modes(policy):
    config = _config(policy)
    reference = _snapshot(_run(config, "stepping"))
    assert reference["extra"]["memory"]["row_conflicts"] > 0  # DRAM truly contended
    for mode in ("fast_forward", "batch", "event_queue"):
        assert _snapshot(_run(config, mode)) == reference, mode


def test_banked_dram_deterministic_caches_bit_identical():
    config = _config("frfcfs", random_caches=False)
    reference = _snapshot(_run(config, "stepping"))
    for mode in ("fast_forward", "batch", "event_queue"):
        assert _snapshot(_run(config, mode)) == reference, mode


def test_reordering_bit_identical_across_kernel_modes():
    """The FR-FCFS decision itself must be mode-invariant.

    A single core's miss stream keeps its fetch row open between consecutive
    dirty misses (multi-core interleaving would close it), so this run
    actually reorders — and every mode must reorder identically.
    """
    config = _config("frfcfs")
    reference = _snapshot(_run(config, "stepping", cores=1))
    assert reference["extra"]["memory"]["reordered_accesses"] > 0
    for mode in ("fast_forward", "batch", "event_queue"):
        assert _snapshot(_run(config, mode, cores=1)) == reference, mode


def test_frfcfs_differs_from_in_order():
    in_order = _run(_config("in_order"), "event_queue", cores=1)
    frfcfs = _run(_config("frfcfs"), "event_queue", cores=1)
    assert in_order.total_cycles != frfcfs.total_cycles
    # Row hits recovered by reordering make the frfcfs schedule faster overall.
    assert frfcfs.extra["memory"]["row_hits"] > in_order.extra["memory"]["row_hits"]
    assert frfcfs.extra["memory"]["reordered_accesses"] > 0


def test_banked_differs_from_fixed():
    """Non-vacuity: the banked model changes timing relative to the fixed model."""
    banked = _run(_config("in_order"), "event_queue")
    fixed = _run(_config("in_order").with_updates(memory=MemoryConfig()), "event_queue")
    assert banked.total_cycles != fixed.total_cycles
    assert fixed.extra["memory"]["row_conflicts"] == 0
