"""Smoke tests for the example scripts.

Each example is executed as a subprocess with deliberately small parameters
so the suite stays fast; the goal is to guarantee the documented entry points
keep working, not to re-check the science (the benchmarks do that).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
EXAMPLES_DIR = REPO_ROOT / "examples"


def run_example(script: str, *args: str, timeout: int = 300) -> str:
    # Make the in-repo package importable for the child no matter how the
    # parent pytest found it (installed, PYTHONPATH, or pytest's pythonpath
    # ini option, which does not propagate to subprocesses).
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        check=False,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_contains_documented_scripts():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "illustrative_example.py",
        "figure1_slowdowns.py",
        "mbpta_pwcet.py",
        "hcba_bandwidth_shares.py",
        "bus_fairness_monitor.py",
    } <= names


def test_quickstart_example_runs(tmp_path):
    out = run_example("quickstart.py", "canrdr", "--runs", "1")
    assert "contention slowdown" in out
    assert "CBA" in out


def test_illustrative_example_runs():
    out = run_example(
        "illustrative_example.py", "--requests", "150", "--isolation-cycles", "1500"
    )
    assert "request-fair slowdown" in out
    assert "9.4x" in out


def test_mbpta_example_runs():
    out = run_example(
        "mbpta_pwcet.py", "canrdr", "--runs", "22", "--operation-runs", "2",
        "--scale", "0.1",
    )
    assert "pWCET" in out
    assert "covers" in out


@pytest.mark.parametrize(
    "script, args",
    [
        ("figure1_slowdowns.py", ["--benchmarks", "canrdr", "--runs", "1", "--scale", "0.15"]),
        ("hcba_bandwidth_shares.py", ["--fractions", "0.5", "--cap-multipliers", "2",
                                      "--runs", "1", "--scale", "0.25"]),
    ],
)
def test_heavier_examples_run_with_tiny_parameters(script, args):
    out = run_example(script, *args)
    assert out.strip()
