"""End-to-end integration tests of the full simulated platform.

These tests exercise the whole stack — workload generation, cores, L1s, bus,
arbiter (with and without CBA), partitioned L2, memory — and check the
system-level behaviours the paper builds its argument on.
"""

import pytest

from repro.analysis.fairness import fairness_report
from repro.platform.presets import cba_config, hcba_config, rp_config
from repro.platform.scenarios import (
    run_isolation,
    run_max_contention,
    run_multiprogram,
    run_wcet_estimation,
)
from repro.workloads.base import AddressPattern, WorkloadSpec
from repro.workloads.synthetic import short_request_workload, streaming_workload


@pytest.fixture(scope="module")
def victim_workload():
    """A short-request, moderately frequent workload (the 'victim' profile)."""
    return WorkloadSpec(
        name="victim",
        num_accesses=250,
        working_set_bytes=3 * 1024,
        mean_compute_gap=10.0,
        gap_variability=0.3,
        pattern=AddressPattern.SEQUENTIAL,
        write_fraction=0.2,
        hot_fraction=0.6,
        hot_region_bytes=1024,
    )


class TestContentionBehaviour:
    def test_rp_contention_slowdown_exceeds_cba(self, victim_workload):
        rp = rp_config()
        cba = cba_config()
        rp_iso = run_isolation(victim_workload, rp, seed=21).tua_cycles
        rp_con = run_max_contention(victim_workload, rp, seed=21).tua_cycles
        cba_con = run_max_contention(victim_workload, cba, seed=21).tua_cycles
        rp_slowdown = rp_con / rp_iso
        cba_slowdown = cba_con / rp_iso
        assert rp_slowdown > 1.5
        assert cba_slowdown < rp_slowdown

    def test_hcba_contention_slowdown_below_cba(self, victim_workload):
        rp_iso = run_isolation(victim_workload, rp_config(), seed=22).tua_cycles
        cba_con = run_max_contention(victim_workload, cba_config(), seed=22).tua_cycles
        hcba_con = run_max_contention(
            victim_workload, hcba_config(favoured_core=0), seed=22
        ).tua_cycles
        assert hcba_con / rp_iso <= cba_con / rp_iso + 0.05

    def test_cba_isolation_overhead_small_for_sparse_requests(self):
        """The paper's ~3% isolation overhead holds for tasks whose bus
        requests are sparse enough that the budget usually refills in time.
        A compute-dominated task must therefore see only a small penalty."""
        quiet = WorkloadSpec(
            name="quiet-iso",
            num_accesses=200,
            working_set_bytes=2 * 1024,
            mean_compute_gap=35.0,
            gap_variability=0.2,
            pattern=AddressPattern.SEQUENTIAL,
            write_fraction=0.1,
            hot_fraction=0.8,
            hot_region_bytes=1024,
        )
        rp_iso = run_isolation(quiet, rp_config(), seed=23).tua_cycles
        cba_iso = run_isolation(quiet, cba_config(), seed=23).tua_cycles
        assert cba_iso >= rp_iso * 0.98
        assert cba_iso <= rp_iso * 1.15

    def test_cba_isolation_overhead_grows_with_bus_demand(self, victim_workload):
        """Conversely, a bus-hungry task pays more in isolation under CBA —
        the effect the paper attributes to requests arriving before the
        budget has recovered."""
        quiet_gap = victim_workload.with_updates(mean_compute_gap=35.0)
        def overhead(workload):
            rp_iso = run_isolation(workload, rp_config(), seed=23).tua_cycles
            cba_iso = run_isolation(workload, cba_config(), seed=23).tua_cycles
            return cba_iso / rp_iso
        assert overhead(victim_workload) >= overhead(quiet_gap) - 0.02

    def test_wcet_estimation_dominates_isolation_and_has_contender_traffic(
        self, victim_workload
    ):
        config = cba_config()
        iso = run_isolation(victim_workload, config, seed=24)
        wcet = run_wcet_estimation(victim_workload, config, seed=24)
        assert wcet.tua_cycles > iso.tua_cycles
        assert sum(wcet.system.extra["contender_requests"].values()) > 0


class TestBandwidthFairness:
    def test_multiprogram_consolidation_completes_and_accounts_bandwidth(self):
        """Consolidate a short-request task with three streaming tasks: every
        task finishes, the cycle accounting is consistent and the fairness
        report distinguishes slot fairness from cycle fairness."""
        victim = short_request_workload(num_accesses=120, mean_compute_gap=6.0)
        streams = streaming_workload(num_accesses=300)
        workloads = {0: victim, 1: streams, 2: streams, 3: streams}
        result = run_multiprogram(workloads, cba_config(), seed=31, max_cycles=2_000_000)
        assert all(c.finished for c in result.system.core_counters.values())
        report = fairness_report(
            result.system.grants_per_core, result.system.cycles_per_core
        )
        assert 0.0 < report.cycle_jain <= 1.0
        assert sum(result.system.bandwidth_shares) == pytest.approx(1.0)

    def test_cba_shields_a_sparse_victim_from_bus_hogs(self, quiet_workload):
        """A compute-dominated victim consolidated against greedy maximum-
        length contenders finishes sooner under CBA than under RP — the
        user-visible effect of cycle-fair bandwidth sharing."""
        rp_con = run_max_contention(quiet_workload, rp_config(), seed=35).tua_cycles
        cba_con = run_max_contention(quiet_workload, cba_config(), seed=35).tua_cycles
        assert cba_con < rp_con

    def test_bus_cycles_accounting_is_consistent(self, victim_workload):
        result = run_max_contention(victim_workload, cba_config(), seed=33)
        system = result.system
        # Cycles attributed to masters never exceed the total simulated cycles.
        assert sum(system.cycles_per_core) <= system.total_cycles
        # The TuA's hold cycles as seen by the core equal the bus accounting.
        assert system.core_counters[0].bus_hold_cycles == system.cycles_per_core[0]


class TestDeterminismAndVariability:
    def test_identical_seeds_reproduce_identical_results(self, victim_workload):
        a = run_max_contention(victim_workload, cba_config(), seed=41, run_index=3)
        b = run_max_contention(victim_workload, cba_config(), seed=41, run_index=3)
        assert a.tua_cycles == b.tua_cycles
        assert a.system.cycles_per_core == b.system.cycles_per_core

    def test_run_index_changes_execution_time(self, victim_workload):
        cycles = {
            run_max_contention(victim_workload, cba_config(), seed=42, run_index=i).tua_cycles
            for i in range(3)
        }
        assert len(cycles) > 1

    def test_l2_partitioning_isolates_cache_state(self, victim_workload):
        """With a partitioned L2 the TuA's miss rate under contention stays
        close to its isolation miss rate (the bus is the only interference)."""
        config = rp_config()
        iso = run_isolation(victim_workload, config, seed=43)
        con = run_max_contention(victim_workload, config, seed=43)
        assert con.system.l1_miss_rates[0] == pytest.approx(
            iso.system.l1_miss_rates[0], abs=0.05
        )
