"""Columnar trace equivalence matrix.

The columnar data path promises that a run whose traces are pre-materialised
into ``(gap, address, kind)`` arrays — and consumed by the core's cursor —
is *bit-identical* to the item-at-a-time run: same RNG draws, same cache
outcomes, same grant/completion cycles, same counters, same pWCET inputs.
These tests enforce the promise across every arbitration policy, CBA on and
off, and the scenarios that exercise every consumption state (greedy
contention, the Table I WCET-estimation mode, multiprogram runs with store
buffers), mirroring the fast-forward equivalence matrix of PR 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu.trace import MaterializedTrace
from repro.platform.scenarios import (
    ScenarioResult,
    run_max_contention,
    run_multiprogram,
    run_wcet_estimation,
)
from repro.platform.system import MulticoreSystem
from repro.sim.config import PlatformConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.synthetic import cpu_bound_workload, mixed_workload

ARBITERS = [
    "fifo",
    "round_robin",
    "tdma",
    "lottery",
    "random_permutations",
    "fixed_priority",
]

MAX_CYCLES = 2_000_000


def _config(arbitration: str, use_cba: bool, **kwargs) -> PlatformConfig:
    return PlatformConfig(
        arbitration=arbitration, random_caches=True, use_cba=use_cba, **kwargs
    )


def _snapshot(result: ScenarioResult) -> dict:
    """Flatten everything observable about a scenario run for comparison."""
    system = result.system
    return {
        "scenario": result.scenario,
        "tua_cycles": result.tua_cycles,
        "truncated": result.truncated,
        "total_cycles": system.total_cycles,
        "core_counters": {
            core: counters.as_dict() for core, counters in system.core_counters.items()
        },
        "request_latencies": {
            core: counters.request_latencies
            for core, counters in system.core_counters.items()
        },
        "bus_utilization": system.bus_utilization,
        "bandwidth_shares": system.bandwidth_shares,
        "grants_per_core": system.grants_per_core,
        "cycles_per_core": system.cycles_per_core,
        "cba_blocked_cycles": system.cba_blocked_cycles,
        "l1_miss_rates": system.l1_miss_rates,
        "l2_miss_rate": system.l2_miss_rate,
        "extra": system.extra,
    }


@pytest.fixture
def varied_workload() -> WorkloadSpec:
    """A workload exercising every access kind and the pure-compute tail."""
    return WorkloadSpec(
        name="varied",
        num_accesses=150,
        working_set_bytes=32 * 1024,
        mean_compute_gap=4.0,
        gap_variability=0.6,
        write_fraction=0.3,
        atomic_fraction=0.05,
        hot_fraction=0.4,
        hot_region_bytes=2 * 1024,
        tail_compute_cycles=25,
    )


@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
@pytest.mark.parametrize("arbitration", ARBITERS)
def test_max_contention_identical_with_and_without_materialization(
    arbitration: str, use_cba: bool, varied_workload: WorkloadSpec
):
    """Greedy contention across the full policy/CBA matrix, with a workload
    that mixes reads, writes, atomics, hot-region reuse and a compute tail."""
    config = _config(arbitration, use_cba)
    kwargs = dict(seed=11, run_index=2, max_cycles=MAX_CYCLES)
    lazy = run_max_contention(
        varied_workload, config, materialize_traces=False, **kwargs
    )
    columnar = run_max_contention(
        varied_workload, config, materialize_traces=True, **kwargs
    )
    assert _snapshot(lazy) == _snapshot(columnar)


@pytest.mark.parametrize("use_cba", [True, False], ids=["cba", "plain"])
@pytest.mark.parametrize("arbitration", ["random_permutations", "tdma", "round_robin"])
def test_wcet_estimation_identical_with_and_without_materialization(
    arbitration: str, use_cba: bool, varied_workload: WorkloadSpec
):
    """The Table I analysis-mode scenario: the contenders observe the TuA's
    request line, which the cursor path must toggle on exactly the same
    cycles as the item-at-a-time path."""
    config = _config(arbitration, use_cba)
    kwargs = dict(seed=5, run_index=7, max_cycles=MAX_CYCLES)
    lazy = run_wcet_estimation(
        varied_workload, config, materialize_traces=False, **kwargs
    )
    columnar = run_wcet_estimation(
        varied_workload, config, materialize_traces=True, **kwargs
    )
    assert _snapshot(lazy) == _snapshot(columnar)


@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
@pytest.mark.parametrize("arbitration", ["round_robin", "tdma"])
def test_multiprogram_with_store_buffers_identical(arbitration: str, use_cba: bool):
    """Real tasks on every core plus write buffers: exercises the buffered
    store drain, port-wait and store-stall states on the cursor path."""
    config = _config(arbitration, use_cba, store_buffer_entries=2)
    store_heavy = WorkloadSpec(
        name="store_heavy",
        num_accesses=120,
        working_set_bytes=64 * 1024,
        mean_compute_gap=2.0,
        write_fraction=0.6,
    )
    workloads = {
        0: mixed_workload(num_accesses=120),
        1: store_heavy,
        2: cpu_bound_workload(num_accesses=80),
    }
    kwargs = dict(seed=3, run_index=1, max_cycles=MAX_CYCLES)
    lazy = run_multiprogram(workloads, config, materialize_traces=False, **kwargs)
    columnar = run_multiprogram(workloads, config, materialize_traces=True, **kwargs)
    assert _snapshot(lazy) == _snapshot(columnar)


@pytest.mark.parametrize("materialize", [False, True], ids=["lazy", "columnar"])
@pytest.mark.parametrize("fast_forward", [False, True], ids=["stepped", "skipped"])
def test_columnar_and_fast_forward_compose(
    fast_forward: bool, materialize: bool, varied_workload: WorkloadSpec
):
    """All four (fast_forward x materialize) combinations are bit-identical:
    the PR 2 and columnar equivalence guarantees compose."""
    config = _config("random_permutations", use_cba=True)
    result = run_wcet_estimation(
        varied_workload,
        config,
        seed=23,
        run_index=4,
        max_cycles=MAX_CYCLES,
        fast_forward=fast_forward,
        materialize_traces=materialize,
    )
    baseline = run_wcet_estimation(
        varied_workload,
        config,
        seed=23,
        run_index=4,
        max_cycles=MAX_CYCLES,
        fast_forward=False,
        materialize_traces=False,
    )
    assert _snapshot(result) == _snapshot(baseline)


# ----------------------------------------------------------------------
# Batch interpreter rows
# ----------------------------------------------------------------------
# The batch interpreter executes whole bus-free stretches (L1-hit reads and
# pure compute) in one call; these rows extend the matrix with the promise
# that doing so is bit-identical to per-cycle stepping across every arbiter,
# CBA on/off and fast-forward on/off.


@pytest.mark.parametrize("fast_forward", [False, True], ids=["stepped", "skipped"])
@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
@pytest.mark.parametrize("arbitration", ARBITERS)
def test_batch_interpreter_identical_across_arbiters(
    arbitration: str, use_cba: bool, fast_forward: bool, varied_workload: WorkloadSpec
):
    """Greedy contention across the full policy/CBA/fast-forward matrix: the
    batch path must place every boundary bus access, grant and RNG draw on
    exactly the cycles the per-cycle columnar path produces."""
    config = _config(arbitration, use_cba)
    kwargs = dict(seed=17, run_index=3, max_cycles=MAX_CYCLES, fast_forward=fast_forward)
    plain = run_max_contention(
        varied_workload, config, batch_interpreter=False, **kwargs
    )
    batched = run_max_contention(
        varied_workload, config, batch_interpreter=True, **kwargs
    )
    assert _snapshot(plain) == _snapshot(batched)


@pytest.mark.parametrize("fast_forward", [False, True], ids=["stepped", "skipped"])
@pytest.mark.parametrize("batch", [False, True], ids=["item", "batch"])
def test_batch_and_fast_forward_compose(
    fast_forward: bool, batch: bool, varied_workload: WorkloadSpec
):
    """All four (fast_forward x batch) combinations equal the lazy stepped
    baseline in the WCET-estimation scenario, where the contenders watch the
    TuA's request line cycle-by-cycle — the most timing-sensitive observer."""
    config = _config("random_permutations", use_cba=True)
    result = run_wcet_estimation(
        varied_workload,
        config,
        seed=23,
        run_index=4,
        max_cycles=MAX_CYCLES,
        fast_forward=fast_forward,
        batch_interpreter=batch,
    )
    baseline = run_wcet_estimation(
        varied_workload,
        config,
        seed=23,
        run_index=4,
        max_cycles=MAX_CYCLES,
        fast_forward=False,
        materialize_traces=False,
    )
    assert _snapshot(result) == _snapshot(baseline)


@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
def test_batch_with_store_buffers_identical(use_cba: bool):
    """Write buffers suspend batching while stores drain; the suspension must
    be invisible in the results."""
    config = _config("round_robin", use_cba, store_buffer_entries=2)
    workloads = {
        0: mixed_workload(num_accesses=120),
        1: WorkloadSpec(
            name="store_heavy",
            num_accesses=120,
            working_set_bytes=64 * 1024,
            mean_compute_gap=2.0,
            write_fraction=0.6,
        ),
        2: cpu_bound_workload(num_accesses=80),
    }
    kwargs = dict(seed=3, run_index=1, max_cycles=MAX_CYCLES)
    plain = run_multiprogram(workloads, config, batch_interpreter=False, **kwargs)
    batched = run_multiprogram(workloads, config, batch_interpreter=True, **kwargs)
    assert _snapshot(plain) == _snapshot(batched)


@pytest.mark.parametrize("max_cycles", [1_500, 3_000, 8_000, 12_345])
def test_batch_truncated_runs_identical(max_cycles: int):
    """A run truncated at its cycle budget mid-stretch must report exactly
    the partial work the stepped run reports: the batch interpreter bounds
    its eager effects by the kernel's run horizon, so nothing from cycles
    past the truncation point leaks into counters or cache state."""
    config = _config("round_robin", use_cba=False)
    l1_resident = WorkloadSpec(
        name="l1_resident",
        num_accesses=2_000,
        working_set_bytes=512,
        mean_compute_gap=6.0,
        write_fraction=0.0,
    )
    kwargs = dict(seed=7, run_index=0, max_cycles=max_cycles, allow_truncation=True)
    from repro.platform.scenarios import run_isolation

    plain = run_isolation(l1_resident, config, batch_interpreter=False, **kwargs)
    batched = run_isolation(l1_resident, config, batch_interpreter=True, **kwargs)
    assert plain.truncated and batched.truncated
    assert _snapshot(plain) == _snapshot(batched)


def test_batching_is_not_vacuous(varied_workload: WorkloadSpec):
    """The batch rows must actually exercise the batch path: an isolation run
    of the hot-region workload batches a substantial share of its items."""
    config = _config("round_robin", use_cba=False)
    system = MulticoreSystem(config, seed=1, run_index=0)
    core = system.add_task(0, varied_workload)
    system.run(max_cycles=MAX_CYCLES)
    assert core.batch_stretches > 0
    assert core.batched_items > 0
    off_system = MulticoreSystem(config, seed=1, run_index=0, batch_interpreter=False)
    off_core = off_system.add_task(0, varied_workload)
    off_system.run(max_cycles=MAX_CYCLES)
    assert off_core.batched_items == 0


# ----------------------------------------------------------------------
# Event-queue rows
# ----------------------------------------------------------------------
# The heap-based event queue finds the same wakes the per-component hint
# scan finds, only O(log n) instead of O(components); these rows extend the
# matrix with the promise that the two scheduling mechanisms are
# bit-identical across every arbiter, CBA on/off, batch on/off, the
# poll-fallback WCET contenders, store buffers and truncated runs.


@pytest.mark.parametrize("batch", [False, True], ids=["item", "batch"])
@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
@pytest.mark.parametrize("arbitration", ARBITERS)
def test_event_queue_identical_across_arbiters(
    arbitration: str, use_cba: bool, batch: bool, varied_workload: WorkloadSpec
):
    """Greedy contention across the full policy/CBA/batch matrix: the queue
    must wake the platform on exactly the cycles the hint scan does."""
    config = _config(arbitration, use_cba)
    kwargs = dict(seed=13, run_index=5, max_cycles=MAX_CYCLES, batch_interpreter=batch)
    scanned = run_max_contention(varied_workload, config, event_queue=False, **kwargs)
    queued = run_max_contention(varied_workload, config, event_queue=True, **kwargs)
    assert _snapshot(scanned) == _snapshot(queued)


@pytest.mark.parametrize("use_cba", [True, False], ids=["cba", "plain"])
def test_event_queue_wcet_estimation_identical(
    use_cba: bool, varied_workload: WorkloadSpec
):
    """The Table I scenario mixes pushed components (cores, bus, monitor)
    with the poll-fallback WCET contenders, whose hint reads the TuA's
    request line — the cross-component case the queue cannot own."""
    config = _config("random_permutations", use_cba)
    kwargs = dict(seed=5, run_index=7, max_cycles=MAX_CYCLES)
    scanned = run_wcet_estimation(varied_workload, config, event_queue=False, **kwargs)
    queued = run_wcet_estimation(varied_workload, config, event_queue=True, **kwargs)
    assert _snapshot(scanned) == _snapshot(queued)


def test_event_queue_multiprogram_with_store_buffers_identical():
    """Buffered stores reschedule core wakes from inside the bus's tick
    (completion callbacks); the queue must see every such transition."""
    config = _config("tdma", use_cba=True, store_buffer_entries=2)
    workloads = {
        0: mixed_workload(num_accesses=120),
        1: WorkloadSpec(
            name="store_heavy",
            num_accesses=120,
            working_set_bytes=64 * 1024,
            mean_compute_gap=2.0,
            write_fraction=0.6,
        ),
        2: cpu_bound_workload(num_accesses=80),
    }
    kwargs = dict(seed=3, run_index=1, max_cycles=MAX_CYCLES)
    scanned = run_multiprogram(workloads, config, event_queue=False, **kwargs)
    queued = run_multiprogram(workloads, config, event_queue=True, **kwargs)
    assert _snapshot(scanned) == _snapshot(queued)


@pytest.mark.parametrize("max_cycles", [1_500, 3_000, 8_000, 12_345])
def test_event_queue_truncated_runs_identical(max_cycles: int):
    """Truncation at the cycle budget composes with the queue: wakes landing
    exactly on (or past) the horizon are never executed, and the vectorised
    batch scan bounds its eager effects identically under both mechanisms."""
    config = _config("round_robin", use_cba=False)
    l1_resident = WorkloadSpec(
        name="l1_resident",
        num_accesses=2_000,
        working_set_bytes=512,
        mean_compute_gap=6.0,
        write_fraction=0.0,
    )
    kwargs = dict(seed=7, run_index=0, max_cycles=max_cycles, allow_truncation=True)
    from repro.platform.scenarios import run_isolation

    scanned = run_isolation(l1_resident, config, event_queue=False, **kwargs)
    queued = run_isolation(l1_resident, config, event_queue=True, **kwargs)
    assert scanned.truncated and queued.truncated
    assert _snapshot(scanned) == _snapshot(queued)


@pytest.mark.parametrize("arbitration", ["round_robin", "random_permutations"])
def test_event_queue_vectorised_residency_identical(arbitration: str):
    """An L1-resident, write-free workload drives the *vectorised* residency
    scan (long stretches, windows unbounded by stores) under both scheduling
    mechanisms and against the unbatched baseline."""
    config = _config(arbitration, use_cba=False)
    l1_resident = WorkloadSpec(
        name="l1_resident",
        num_accesses=4_000,
        working_set_bytes=512,
        mean_compute_gap=4.0,
        write_fraction=0.0,
    )
    kwargs = dict(seed=19, run_index=2, max_cycles=MAX_CYCLES)
    from repro.platform.scenarios import run_isolation

    baseline = run_isolation(
        l1_resident, config, event_queue=False, batch_interpreter=False, **kwargs
    )
    queued = run_isolation(
        l1_resident, config, event_queue=True, batch_interpreter=True, **kwargs
    )
    assert _snapshot(baseline) == _snapshot(queued)


def test_event_queue_is_not_vacuous(varied_workload: WorkloadSpec):
    """The queue rows must actually schedule through the heap: the platform's
    pushed components own live entries while the run progresses, and the
    scan-mode kernel enqueues nothing."""
    config = _config("round_robin", use_cba=False)
    system = MulticoreSystem(config, seed=1, run_index=0, event_queue=True)
    core = system.add_task(0, varied_workload)
    system.finalize()
    kernel = system.kernel
    assert kernel.scheduled_wake(core) == 0  # primed from next_event
    system.run(max_cycles=MAX_CYCLES)
    assert kernel.cycles_skipped > 0
    off = MulticoreSystem(config, seed=1, run_index=0, event_queue=False)
    off_core = off.add_task(0, varied_workload)
    off.finalize()
    assert off.kernel.scheduled_wake(off_core) is None


def test_materialization_is_not_vacuous(varied_workload: WorkloadSpec):
    """The columnar run must actually use a materialised trace (and the lazy
    run must not), so the matrix cannot pass by comparing identical paths."""
    config = _config("random_permutations", use_cba=False)
    columnar = MulticoreSystem(config, seed=1, run_index=0, materialize_traces=True)
    lazy = MulticoreSystem(config, seed=1, run_index=0, materialize_traces=False)
    columnar_core = columnar.add_task(0, varied_workload)
    lazy_core = lazy.add_task(0, varied_workload)
    assert isinstance(columnar_core.trace, MaterializedTrace)
    assert not isinstance(lazy_core.trace, MaterializedTrace)
    # The columnar trace holds the whole run pre-computed as parallel arrays.
    trace = columnar_core.trace
    assert len(trace) == varied_workload.num_accesses + 1  # + compute tail
    assert trace.compute_gaps.dtype == np.int64
    assert trace.addresses.dtype == np.int64
    assert trace.kinds.dtype == np.int8
    assert not trace.compute_gaps.flags.writeable
