"""Fast-forward equivalence matrix.

The event-aware kernel promises that jumping over dead cycles is
*bit-identical* to stepping through them: same grant/completion cycles, same
RNG draws, same counters, same pWCET inputs.  These tests enforce the promise
across every arbitration policy, both cache configurations (random placement
+ replacement vs deterministic modulo + LRU), CBA on and off, and the
scenarios that exercise every component state (greedy contention, the
WCET-estimation mode of Table I, multiprogram runs with store buffers).
"""

from __future__ import annotations

import pytest

from repro.platform.scenarios import (
    ScenarioResult,
    run_max_contention,
    run_multiprogram,
    run_wcet_estimation,
)
from repro.platform.system import MulticoreSystem
from repro.sim.config import CBAParameters, PlatformConfig
from repro.workloads.base import WorkloadSpec
from repro.workloads.synthetic import cpu_bound_workload, streaming_workload

ARBITERS = [
    "fifo",
    "round_robin",
    "tdma",
    "lottery",
    "random_permutations",
    "fixed_priority",
]

MAX_CYCLES = 2_000_000


def _config(arbitration: str, random_caches: bool, use_cba: bool, **kwargs) -> PlatformConfig:
    return PlatformConfig(
        arbitration=arbitration,
        random_caches=random_caches,
        use_cba=use_cba,
        **kwargs,
    )


def _snapshot(result: ScenarioResult) -> dict:
    """Flatten everything observable about a scenario run for comparison."""
    system = result.system
    return {
        "scenario": result.scenario,
        "tua_cycles": result.tua_cycles,
        "truncated": result.truncated,
        "total_cycles": system.total_cycles,
        "core_counters": {
            core: counters.as_dict() for core, counters in system.core_counters.items()
        },
        "request_latencies": {
            core: counters.request_latencies
            for core, counters in system.core_counters.items()
        },
        "bus_utilization": system.bus_utilization,
        "bandwidth_shares": system.bandwidth_shares,
        "grants_per_core": system.grants_per_core,
        "cycles_per_core": system.cycles_per_core,
        "cba_blocked_cycles": system.cba_blocked_cycles,
        "l1_miss_rates": system.l1_miss_rates,
        "l2_miss_rate": system.l2_miss_rate,
        "extra": system.extra,
    }


@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
@pytest.mark.parametrize("random_caches", [True, False], ids=["random", "deterministic"])
@pytest.mark.parametrize("arbitration", ARBITERS)
def test_max_contention_identical_with_and_without_skipping(
    arbitration: str, random_caches: bool, use_cba: bool
):
    """Greedy contenders keep the bus saturated — the stall-heavy case
    fast-forwarding exists for — across the full policy/cache/CBA matrix."""
    config = _config(arbitration, random_caches, use_cba)
    workload = streaming_workload(num_accesses=150)
    kwargs = dict(seed=11, run_index=2, max_cycles=MAX_CYCLES)
    stepped = run_max_contention(workload, config, fast_forward=False, **kwargs)
    skipped = run_max_contention(workload, config, fast_forward=True, **kwargs)
    assert _snapshot(stepped) == _snapshot(skipped)


@pytest.mark.parametrize("use_cba", [True, False], ids=["cba", "plain"])
@pytest.mark.parametrize("arbitration", ["random_permutations", "tdma", "round_robin"])
def test_wcet_estimation_identical_with_and_without_skipping(
    arbitration: str, use_cba: bool
):
    """The Table I analysis-mode contenders gate on the TuA's request line and
    their own budget — the trickiest wake-hint interaction (COMP-bit dynamics,
    zeroed TuA budget, budget refill wake-ups)."""
    config = _config(arbitration, random_caches=True, use_cba=use_cba)
    workload = streaming_workload(num_accesses=120)
    kwargs = dict(seed=5, run_index=7, max_cycles=MAX_CYCLES)
    stepped = run_wcet_estimation(workload, config, fast_forward=False, **kwargs)
    skipped = run_wcet_estimation(workload, config, fast_forward=True, **kwargs)
    assert _snapshot(stepped) == _snapshot(skipped)


@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
@pytest.mark.parametrize("arbitration", ["round_robin", "tdma"])
def test_multiprogram_with_store_buffers_identical(arbitration: str, use_cba: bool):
    """Real tasks on every core plus write buffers: exercises the buffered
    store drain, port-wait and store-stall states under fast-forwarding."""
    config = _config(arbitration, random_caches=True, use_cba=use_cba, store_buffer_entries=2)
    store_heavy = WorkloadSpec(
        name="store_heavy",
        num_accesses=120,
        working_set_bytes=64 * 1024,
        mean_compute_gap=2.0,
        write_fraction=0.6,
    )
    workloads = {
        0: streaming_workload(num_accesses=120),
        1: store_heavy,
        2: cpu_bound_workload(num_accesses=80),
    }
    kwargs = dict(seed=3, run_index=1, max_cycles=MAX_CYCLES)
    stepped = run_multiprogram(workloads, config, fast_forward=False, **kwargs)
    skipped = run_multiprogram(workloads, config, fast_forward=True, **kwargs)
    assert _snapshot(stepped) == _snapshot(skipped)


def _build_contention_system(fast_forward: bool, use_cba: bool) -> MulticoreSystem:
    config = _config("random_permutations", random_caches=True, use_cba=use_cba)
    system = MulticoreSystem(config, seed=23, run_index=4, fast_forward=fast_forward)
    system.add_task(0, streaming_workload(num_accesses=150))
    for core in range(1, config.num_cores):
        system.add_greedy_contender(core)
    return system


@pytest.mark.parametrize("use_cba", [False, True], ids=["plain", "cba"])
def test_internal_state_identical_and_skipping_not_vacuous(use_cba: bool):
    """Deep comparison below the SystemResult surface: raw bus statistics,
    windowed monitor accounting and credit-bank totals — plus proof that the
    fast-forwarded run actually skipped cycles (the matrix must not pass
    vacuously because nothing was ever jumped)."""
    stepped = _build_contention_system(fast_forward=False, use_cba=use_cba)
    skipped = _build_contention_system(fast_forward=True, use_cba=use_cba)
    stepped.run(max_cycles=MAX_CYCLES)
    skipped.run(max_cycles=MAX_CYCLES)

    assert stepped.kernel.cycles_skipped == 0
    assert skipped.kernel.cycles_skipped > 0
    assert skipped.kernel.clock.cycle == stepped.kernel.clock.cycle

    assert skipped.bus.stats.as_dict() == stepped.bus.stats.as_dict()
    assert skipped.l2_slave.stats.as_dict() == stepped.l2_slave.stats.as_dict()
    assert skipped.memory_controller.stats.as_dict() == stepped.memory_controller.stats.as_dict()

    assert skipped.monitor.windows == stepped.monitor.windows
    assert skipped.monitor.total_busy_per_master == stepped.monitor.total_busy_per_master
    assert skipped.monitor.total_cycles_observed == stepped.monitor.total_cycles_observed

    if use_cba:
        assert skipped.cba is not None and stepped.cba is not None
        assert skipped.cba.budgets() == stepped.cba.budgets()
        assert skipped.cba.blocked_cycles == stepped.cba.blocked_cycles
        for fast, slow in zip(skipped.cba.credits.accounts, stepped.cba.credits.accounts, strict=True):
            assert fast.total_replenished == slow.total_replenished
            assert fast.total_drained == slow.total_drained


def test_fast_forward_skips_most_cycles_of_a_memory_bound_run():
    """The point of the PR: in a bus-stall-bound run nearly every cycle is
    dead time, and the kernel should jump it rather than step it."""
    system = _build_contention_system(fast_forward=True, use_cba=False)
    system.run(max_cycles=MAX_CYCLES)
    total = system.kernel.clock.cycle
    assert system.kernel.cycles_skipped > 0.8 * total
