"""Tests for the optional per-core write (store) buffer.

The paper's platform uses write-through L1 data caches, so every store
produces a bus transaction.  Real LEON3 pipelines hide the store latency with
a small write buffer; the core model exposes it as an option
(``store_buffer_entries``), disabled by default to match the configuration
used for the paper's experiments.
"""

import numpy as np
import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.ports import FixedLatencySlave
from repro.bus.transaction import AccessType
from repro.cache.l1 import build_l1_cache
from repro.cpu.core_model import CoreModel
from repro.cpu.requests import MemoryAccess, TraceItem
from repro.cpu.trace import ListTrace
from repro.platform.presets import cba_config, rp_config
from repro.platform.scenarios import run_isolation
from repro.sim.config import CacheGeometry
from repro.sim.kernel import Kernel


def build_system(items, store_buffer_entries, bus_latency=6):
    kernel = Kernel()
    bus = SharedBus(
        "bus",
        num_masters=1,
        arbiter=RoundRobinArbiter(1),
        slave=FixedLatencySlave(bus_latency),
        max_latency=56,
    )
    l1 = build_l1_cache(
        "l1",
        CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2),
        random_caches=False,
        rng=np.random.default_rng(0),
    )
    core = CoreModel(
        "core0", 0, ListTrace(items), l1, bus,
        store_buffer_entries=store_buffer_entries,
    )
    kernel.register(core)
    kernel.register(bus)
    kernel.add_stop_condition(lambda: core.finished)
    return kernel, core, bus


def store_item(address, gap=0):
    return TraceItem(
        compute_cycles=gap,
        access=MemoryAccess(address=address, access=AccessType.WRITE),
    )


def run(kernel, core, max_cycles=20_000):
    kernel.run(max_cycles=max_cycles)
    assert core.finished
    return core


def test_negative_buffer_size_rejected():
    with pytest.raises(ValueError):
        build_system([], store_buffer_entries=-1)


def test_buffered_stores_do_not_block_the_pipeline():
    """With a buffer, a store plus trailing computation overlaps the bus
    transaction, so the run is shorter than in the blocking configuration."""
    items = [store_item(0x100), TraceItem(compute_cycles=30)]
    kernel_b, core_b, _ = build_system(items, store_buffer_entries=2)
    run(kernel_b, core_b)
    kernel_a, core_a, _ = build_system(items, store_buffer_entries=0)
    run(kernel_a, core_a)
    assert core_b.execution_cycles < core_a.execution_cycles
    assert core_b.counters.buffered_stores == 1
    assert core_a.counters.buffered_stores == 0


def test_all_stores_still_reach_the_bus():
    items = [store_item(0x100 + i * 64, gap=2) for i in range(5)]
    kernel, core, bus = build_system(items, store_buffer_entries=2)
    run(kernel, core)
    assert core.counters.bus_requests == 5
    assert bus.stats.counter("requests_completed").value == 5


def test_task_only_finishes_after_the_buffer_drains():
    items = [store_item(0x100)]
    kernel, core, bus = build_system(items, store_buffer_entries=4, bus_latency=10)
    run(kernel, core)
    # The finish time covers the drained store (grant + 10-cycle hold).
    assert core.execution_cycles >= 10
    assert bus.stats.counter("requests_completed").value == 1


def test_full_buffer_stalls_the_core():
    # Three back-to-back stores with a 1-entry buffer: the third must stall.
    items = [store_item(0x100 + i * 64) for i in range(3)]
    kernel, core, _ = build_system(items, store_buffer_entries=1, bus_latency=20)
    run(kernel, core, max_cycles=50_000)
    assert core.counters.store_stall_cycles > 0
    assert core.counters.bus_requests == 3


def test_demand_read_waits_for_the_port_then_completes():
    items = [
        store_item(0x100),
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x900)),
    ]
    kernel, core, bus = build_system(items, store_buffer_entries=2, bus_latency=15)
    run(kernel, core, max_cycles=50_000)
    assert core.counters.bus_requests == 2
    assert bus.stats.counter("requests_completed").value == 2
    # The read could not start before the store released the single port, so
    # the total run covers both transactions back to back.
    assert core.execution_cycles >= 30


def test_platform_config_threads_the_buffer_size_through(tiny_workload):
    config = rp_config().with_updates(store_buffer_entries=2)
    result = run_isolation(tiny_workload, config, seed=5)
    assert result.system.core_counters[0].buffered_stores > 0


def test_store_buffer_speeds_up_the_baseline_bus(tiny_workload):
    """Hiding store latency shortens execution on the RP bus.  Under CBA a
    bus-hungry task is budget-bound rather than latency-bound, so buffering
    cannot hurt it but does not buy much either — which is why the paper's
    configuration (no buffer) is kept as the default."""
    rp_plain = run_isolation(tiny_workload, rp_config(), seed=6).tua_cycles
    rp_buffered = run_isolation(
        tiny_workload, rp_config().with_updates(store_buffer_entries=4), seed=6
    ).tua_cycles
    assert rp_buffered <= rp_plain

    cba_plain = run_isolation(tiny_workload, cba_config(), seed=6).tua_cycles
    cba_buffered = run_isolation(
        tiny_workload, cba_config().with_updates(store_buffer_entries=4), seed=6
    ).tua_cycles
    assert cba_buffered <= cba_plain * 1.02
