"""Tests for the workload trace containers."""

import numpy as np
import pytest

from repro.bus.transaction import AccessType
from repro.cpu.requests import MemoryAccess, TraceItem
from repro.cpu.trace import (
    KIND_ATOMIC,
    KIND_NONE,
    KIND_READ,
    KIND_WRITE,
    GeneratorTrace,
    InfiniteTrace,
    ListTrace,
    MaterializedTrace,
)
from repro.sim.errors import WorkloadError


def items(n):
    return [TraceItem(compute_cycles=i, access=MemoryAccess(address=i * 32)) for i in range(n)]


class TestListTrace:
    def test_yields_items_in_order_then_none(self):
        trace = ListTrace(items(3))
        got = [trace.next_item() for _ in range(4)]
        assert [item.compute_cycles for item in got[:3]] == [0, 1, 2]
        assert got[3] is None

    def test_reset_rewinds(self):
        trace = ListTrace(items(2))
        trace.next_item()
        trace.reset()
        assert trace.next_item().compute_cycles == 0
        assert trace.remaining == 1

    def test_len_and_finite(self):
        trace = ListTrace(items(5))
        assert len(trace) == 5
        assert trace.finite


class TestGeneratorTrace:
    def test_consumes_factory_output(self):
        trace = GeneratorTrace(lambda: iter(items(2)))
        assert trace.next_item() is not None
        assert trace.next_item() is not None
        assert trace.next_item() is None

    def test_reset_restarts_the_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(items(1))

        trace = GeneratorTrace(factory)
        trace.next_item()
        trace.reset()
        assert trace.next_item() is not None
        assert len(calls) == 2


class TestLazyFactoryInvocation:
    """The factory must not run at construction time (satellite fix): side
    effects fire on first use, and a reset() issued before first use must not
    generate the sequence twice."""

    def test_construction_does_not_invoke_the_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(items(2))

        GeneratorTrace(factory)
        InfiniteTrace(factory)
        assert calls == []

    def test_reset_before_first_use_generates_once(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(items(2))

        trace = GeneratorTrace(factory)
        trace.reset()
        assert trace.next_item() is not None
        assert len(calls) == 1

    def test_infinite_reset_before_first_use_generates_once(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(items(2))

        trace = InfiniteTrace(factory)
        trace.reset()
        assert trace.next_item() is not None
        assert len(calls) == 1


class TestMaterializedTrace:
    def make(self):
        return MaterializedTrace(
            compute_gaps=[3, 0, 5, 2],
            addresses=[0x100, 0x200, 0x300, 0],
            kinds=[KIND_READ, KIND_WRITE, KIND_ATOMIC, KIND_NONE],
            name="columnar",
        )

    def test_columns_are_readonly_numpy_arrays(self):
        trace = self.make()
        assert trace.columnar
        assert trace.compute_gaps.dtype == np.int64
        assert trace.addresses.dtype == np.int64
        assert trace.kinds.dtype == np.int8
        for column in (trace.compute_gaps, trace.addresses, trace.kinds):
            assert not column.flags.writeable
        assert len(trace) == 4

    def test_next_item_adapter_rebuilds_items(self):
        trace = self.make()
        first = trace.next_item()
        assert first == TraceItem(
            compute_cycles=3, access=MemoryAccess(address=0x100, access=AccessType.READ)
        )
        second = trace.next_item()
        assert second.access.access is AccessType.WRITE
        third = trace.next_item()
        assert third.access.access is AccessType.ATOMIC
        tail = trace.next_item()
        assert tail == TraceItem(compute_cycles=2, access=None)
        assert trace.next_item() is None

    def test_reset_rewinds_the_cursor(self):
        trace = self.make()
        trace.next_item()
        trace.next_item()
        assert trace.remaining == 2
        trace.reset()
        assert trace.remaining == 4
        assert trace.next_item().compute_cycles == 3

    def test_mismatched_columns_rejected(self):
        with pytest.raises(WorkloadError):
            MaterializedTrace([1, 2], [0x100], [KIND_READ])
        with pytest.raises(WorkloadError):
            MaterializedTrace([1], [0x100], [17])
        with pytest.raises(WorkloadError):
            MaterializedTrace([-1], [0x100], [KIND_READ])

    def test_materialize_of_a_list_trace_round_trips(self):
        source = ListTrace(items(5), name="src")
        materialized = source.materialize()
        assert len(materialized) == 5
        materialized_again = materialized.materialize()
        assert materialized_again is materialized
        replay = ListTrace(items(5))
        for _ in range(5):
            assert materialized_again.next_item() == replay.next_item()

    def test_reset_replays_the_same_sequence_unlike_a_lazy_trace(self):
        """Documented semantic difference: a materialised trace replays its
        pre-drawn columns on reset, while a GeneratorTrace bound to an RNG
        draws a fresh sequence (fresh systems per run keep campaign runs
        independent either way)."""
        rng = np.random.default_rng(7)

        def factory():
            return iter(
                [TraceItem(compute_cycles=int(rng.integers(0, 1000)))]
            )

        lazy = GeneratorTrace(factory)
        first = lazy.next_item().compute_cycles
        lazy.reset()
        second = lazy.next_item().compute_cycles
        assert first != second  # fresh draws on reset

        materialized = self.make()
        before = [materialized.next_item() for _ in range(4)]
        materialized.reset()
        after = [materialized.next_item() for _ in range(4)]
        assert before == after  # identical replay

    def test_materialize_unbounded_requires_max_items(self):
        trace = InfiniteTrace(lambda: iter(items(3)))
        with pytest.raises(WorkloadError):
            trace.materialize()
        prefix = trace.materialize(max_items=7)
        assert len(prefix) == 7
        assert prefix.finite


class TestInfiniteTrace:
    def test_repeats_forever(self):
        trace = InfiniteTrace(lambda: iter(items(2)))
        got = [trace.next_item() for _ in range(7)]
        assert all(item is not None for item in got)
        assert not trace.finite

    def test_empty_factory_raises(self):
        trace = InfiniteTrace(lambda: iter([]))
        with pytest.raises(WorkloadError):
            trace.next_item()

    def test_reset_restarts(self):
        trace = InfiniteTrace(lambda: iter(items(3)))
        trace.next_item()
        trace.reset()
        assert trace.next_item().compute_cycles == 0
