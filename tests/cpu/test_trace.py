"""Tests for the workload trace containers."""

import pytest

from repro.cpu.requests import MemoryAccess, TraceItem
from repro.cpu.trace import GeneratorTrace, InfiniteTrace, ListTrace
from repro.sim.errors import WorkloadError


def items(n):
    return [TraceItem(compute_cycles=i, access=MemoryAccess(address=i * 32)) for i in range(n)]


class TestListTrace:
    def test_yields_items_in_order_then_none(self):
        trace = ListTrace(items(3))
        got = [trace.next_item() for _ in range(4)]
        assert [item.compute_cycles for item in got[:3]] == [0, 1, 2]
        assert got[3] is None

    def test_reset_rewinds(self):
        trace = ListTrace(items(2))
        trace.next_item()
        trace.reset()
        assert trace.next_item().compute_cycles == 0
        assert trace.remaining == 1

    def test_len_and_finite(self):
        trace = ListTrace(items(5))
        assert len(trace) == 5
        assert trace.finite


class TestGeneratorTrace:
    def test_consumes_factory_output(self):
        trace = GeneratorTrace(lambda: iter(items(2)))
        assert trace.next_item() is not None
        assert trace.next_item() is not None
        assert trace.next_item() is None

    def test_reset_restarts_the_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return iter(items(1))

        trace = GeneratorTrace(factory)
        trace.next_item()
        trace.reset()
        assert trace.next_item() is not None
        assert len(calls) == 2


class TestInfiniteTrace:
    def test_repeats_forever(self):
        trace = InfiniteTrace(lambda: iter(items(2)))
        got = [trace.next_item() for _ in range(7)]
        assert all(item is not None for item in got)
        assert not trace.finite

    def test_empty_factory_raises(self):
        trace = InfiniteTrace(lambda: iter([]))
        with pytest.raises(WorkloadError):
            trace.next_item()

    def test_reset_restarts(self):
        trace = InfiniteTrace(lambda: iter(items(3)))
        trace.next_item()
        trace.reset()
        assert trace.next_item().compute_cycles == 0
