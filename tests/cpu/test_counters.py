"""Tests for the per-core performance counters."""

from repro.cpu.counters import CoreCounters


def test_execution_cycles_defined_only_after_finish():
    counters = CoreCounters(core_id=0, start_cycle=100)
    assert not counters.finished
    assert counters.execution_cycles == 0
    counters.finish_cycle = 350
    assert counters.finished
    assert counters.execution_cycles == 250


def test_bus_bound_cycles_sum_wait_and_hold():
    counters = CoreCounters(core_id=1, bus_wait_cycles=40, bus_hold_cycles=60)
    assert counters.bus_bound_cycles == 100


def test_l1_hit_rate_handles_zero_accesses():
    counters = CoreCounters(core_id=0)
    assert counters.l1_hit_rate() == 0.0
    counters.accesses = 10
    counters.l1_hits = 7
    assert counters.l1_hit_rate() == 0.7


def test_as_dict_contains_the_reported_fields():
    counters = CoreCounters(core_id=2)
    data = counters.as_dict()
    for key in ("core_id", "accesses", "bus_requests", "execution_cycles", "finished"):
        assert key in data
