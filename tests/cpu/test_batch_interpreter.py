"""Unit tests for the core's batch interpreter.

The integration matrix (tests/integration/test_columnar_equivalence.py)
proves whole-system bit-identity; these tests pin down the mechanism itself
against a minimal bus + deterministic cache: stretch boundaries, exact cycle
accounting, LRU timestamp stamping, trace-end finishing and the store-buffer
suspension.
"""

import numpy as np
import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.ports import FixedLatencySlave
from repro.cache.l1 import build_l1_cache
from repro.cpu.core_model import CoreModel
from repro.cpu.trace import KIND_NONE, KIND_READ, KIND_WRITE, MaterializedTrace
from repro.sim.config import CacheGeometry
from repro.sim.kernel import Kernel


def build_system(
    trace: MaterializedTrace,
    batch: bool,
    fast_forward: bool = True,
    bus_latency: int = 4,
    store_buffer_entries: int = 0,
    lru: bool = True,
):
    kernel = Kernel(fast_forward=fast_forward)
    bus = SharedBus(
        "bus",
        num_masters=1,
        arbiter=RoundRobinArbiter(1),
        slave=FixedLatencySlave(bus_latency),
        max_latency=56,
    )
    l1 = build_l1_cache(
        "l1",
        CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2),
        random_caches=not lru,
        rng=np.random.default_rng(0),
    )
    core = CoreModel(
        "core0",
        0,
        trace,
        l1,
        bus,
        store_buffer_entries=store_buffer_entries,
        batch_interpreter=batch,
    )
    kernel.register(core)
    kernel.register(bus)
    kernel.add_stop_condition(lambda: core.finished)
    return kernel, core


def run_both(trace_columns, fast_forward: bool = True, **kwargs):
    """Run the same trace with and without batching; return the two cores."""
    results = []
    for batch in (False, True):
        trace = MaterializedTrace(*trace_columns)
        kernel, core = build_system(
            trace, batch=batch, fast_forward=fast_forward, **kwargs
        )
        kernel.run(max_cycles=100_000)
        assert core.finished
        results.append((kernel, core))
    return results


def state_of(kernel, core):
    cache = core.l1_data.cache
    return (
        kernel.clock.cycle,
        core.counters.as_dict(),
        core.counters.request_latencies,
        (cache.hits, cache.misses),
        [
            [(line.valid, line.tag, line.dirty, line.last_used) for line in ways]
            for ways in cache._sets
        ],
    )


# One line per set under modulo placement (32-byte lines): addresses 0, 32,
# 64... land in sets 0, 1, 2...
A, B, C = 0x000, 0x020, 0x040


def test_hit_stretch_executes_in_one_batch():
    # Warm the cache with three misses, then a long run of hits.
    columns = (
        [0, 0, 0] + [3] * 9,
        [A, B, C] + [A, B, C] * 3,
        [KIND_READ] * 12,
    )
    (k_plain, plain), (k_batch, batched) = run_both(columns)
    assert state_of(k_plain, plain) == state_of(k_batch, batched)
    assert batched.batched_items == 9
    # The nine hits form one stretch (entered when the third miss completes).
    assert batched.batch_stretches == 1
    assert plain.batched_items == 0


def test_stretch_ends_at_write_and_at_miss():
    columns = (
        [0, 2, 2, 2, 2, 2],
        [A, A, A, B, A, A],
        [KIND_READ, KIND_READ, KIND_WRITE, KIND_READ, KIND_READ, KIND_READ],
    )
    (k_plain, plain), (k_batch, batched) = run_both(columns)
    assert state_of(k_plain, plain) == state_of(k_batch, batched)
    # Stretch 1: the hit on A before the write; the write goes to the bus;
    # B misses (the scan comes back empty there, not a stretch); stretch 2:
    # the final two hits on A.
    assert batched.batch_stretches == 2
    assert batched.batched_items == 3


def test_pure_compute_tail_finishes_at_identical_cycle():
    columns = (
        [0, 5, 7, 25],
        [A, 0, 0, 0],
        [KIND_READ, KIND_NONE, KIND_NONE, KIND_NONE],
    )
    (k_plain, plain), (k_batch, batched) = run_both(columns)
    assert state_of(k_plain, plain) == state_of(k_batch, batched)
    assert plain.counters.finish_cycle == batched.counters.finish_cycle
    assert batched.batched_items == 3


def test_whole_trace_batchable_from_first_tick():
    columns = ([4, 4, 4], [0, 0, 0], [KIND_NONE] * 3)
    (k_plain, plain), (k_batch, batched) = run_both(columns)
    assert state_of(k_plain, plain) == state_of(k_batch, batched)
    assert batched.batched_items == 3
    assert batched.batch_stretches == 1


@pytest.mark.parametrize("fast_forward", [False, True], ids=["stepped", "skipped"])
def test_stepped_and_skipped_batch_agree(fast_forward):
    columns = (
        [1, 0, 3, 2, 0, 4],
        [A, B, A, C, B, A],
        [KIND_READ, KIND_READ, KIND_READ, KIND_WRITE, KIND_READ, KIND_READ],
    )
    (k_plain, plain), (k_batch, batched) = run_both(columns, fast_forward=fast_forward)
    assert state_of(k_plain, plain) == state_of(k_batch, batched)


def test_lru_timestamps_match_exactly():
    """Batched hits must stamp last_used with the cycle the stepped L1
    pipeline would have completed them — LRU victim choice depends on it."""
    columns = (
        [0, 1, 2, 3, 4],
        [A, A, A, A, A],
        [KIND_READ] * 5,
    )
    (k_plain, plain), (k_batch, batched) = run_both(columns, lru=True)
    plain_lines = [
        (line.tag, line.last_used)
        for ways in plain.l1_data.cache._sets
        for line in ways
        if line.valid
    ]
    batch_lines = [
        (line.tag, line.last_used)
        for ways in batched.l1_data.cache._sets
        for line in ways
        if line.valid
    ]
    assert plain_lines == batch_lines


def test_store_buffer_suspends_batching_without_divergence():
    columns = (
        [0, 1, 1, 1, 1, 1],
        [A, A, A, B, A, A],
        [KIND_READ, KIND_WRITE, KIND_READ, KIND_WRITE, KIND_READ, KIND_READ],
    )
    (k_plain, plain), (k_batch, batched) = run_both(columns, store_buffer_entries=2)
    assert state_of(k_plain, plain) == state_of(k_batch, batched)


@pytest.mark.parametrize("stop_at", [3, 7, 15, 29])
def test_hinted_clock_stop_stays_bit_identical(stop_at):
    """A hinted stop condition ("stop at cycle X") can end the run mid-run;
    hinted predicates may watch fast-forwarded accounting, which eager batch
    counters would flip cycles early, so batching falls back to the
    cycle-accurate path and the results stay bit-identical."""
    columns = ([0] + [3] * 9, [A] * 10, [KIND_READ] * 10)
    states = []
    for batch in (False, True):
        trace = MaterializedTrace(*columns)
        kernel, core = build_system(trace, batch=batch)
        kernel.add_stop_condition(
            lambda k=kernel: k.clock.cycle >= stop_at,
            next_event=lambda now: stop_at,
        )
        kernel.run(max_cycles=10_000)
        states.append(state_of(kernel, core))
        assert core.batched_items == 0  # hinted stops disable batching
    assert states[0] == states[1]


@pytest.mark.parametrize("threshold", [1, 3, 7])
def test_hinted_accounting_stop_stays_bit_identical(threshold):
    """The add_stop_condition contract explicitly allows hinted predicates
    that watch counters advanced by fast_forward; such a predicate must fire
    on the same cycle with batching enabled as with stepping."""
    columns = ([0] + [3] * 9, [A] * 10, [KIND_READ] * 10)
    cycles_at_stop = []
    for batch in (False, True):
        trace = MaterializedTrace(*columns)
        kernel, core = build_system(trace, batch=batch)
        kernel.add_stop_condition(
            lambda c=core: c.counters.items_completed >= threshold,
            next_event=lambda now: now,  # conservative: re-check every cycle
        )
        kernel.run(max_cycles=10_000)
        cycles_at_stop.append((kernel.clock.cycle, core.counters.as_dict()))
    assert cycles_at_stop[0] == cycles_at_stop[1]


def test_bare_stepping_gets_exact_partial_state():
    """Outside Kernel.run there is no run horizon, so batching stays off:
    kernel.step(N) must leave exactly the cycle-accurate partial state a
    non-batch core would have (no eagerly applied future work)."""
    columns = ([0] + [5] * 19, [A] * 20, [KIND_READ] * 20)
    partials = []
    for batch in (False, True):
        trace = MaterializedTrace(*columns)
        kernel, core = build_system(trace, batch=batch)
        kernel.step(30)
        partials.append(state_of(kernel, core))
        assert core.batched_items == 0
    assert partials[0] == partials[1]


def test_reset_clears_batch_state_and_replays_identically():
    columns = ([0, 2, 2], [A, A, A], [KIND_READ] * 3)
    trace = MaterializedTrace(*columns)
    kernel, core = build_system(trace, batch=True)
    kernel.run(max_cycles=10_000)
    first = (core.counters.as_dict(), core.batched_items)
    kernel.reset()
    assert core.batched_items == 0
    kernel.run(max_cycles=10_000)
    assert (core.counters.as_dict(), core.batched_items) == first
