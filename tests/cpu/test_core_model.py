"""Tests for the trace-driven core model.

The core is exercised against a real bus with a fixed-latency slave so its
timing behaviour (compute, L1 hit, bus stall) can be checked cycle by cycle.
"""

import numpy as np
import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.ports import FixedLatencySlave
from repro.bus.transaction import AccessType
from repro.cache.l1 import build_l1_cache
from repro.cpu.core_model import CoreModel, CoreState
from repro.cpu.requests import MemoryAccess, TraceItem
from repro.cpu.trace import ListTrace
from repro.sim.config import CacheGeometry
from repro.sim.kernel import Kernel


def build_system(items, bus_latency=4, num_masters=1):
    kernel = Kernel()
    bus = SharedBus(
        "bus",
        num_masters=num_masters,
        arbiter=RoundRobinArbiter(num_masters),
        slave=FixedLatencySlave(bus_latency),
        max_latency=56,
    )
    l1 = build_l1_cache(
        "l1",
        CacheGeometry(size_bytes=1024, line_bytes=32, associativity=2),
        random_caches=False,
        rng=np.random.default_rng(0),
    )
    core = CoreModel("core0", 0, ListTrace(items), l1, bus)
    kernel.register(core)
    kernel.register(bus)
    return kernel, core, bus


def run_to_completion(kernel, core, max_cycles=10_000):
    kernel.add_stop_condition(lambda: core.finished)
    kernel.run(max_cycles=max_cycles)
    assert core.finished
    return core


def test_pure_compute_trace_finishes_without_bus_traffic():
    items = [TraceItem(compute_cycles=10), TraceItem(compute_cycles=5)]
    kernel, core, bus = build_system(items)
    run_to_completion(kernel, core)
    assert core.counters.bus_requests == 0
    assert core.counters.compute_cycles == 15
    assert bus.stats.counter("requests_submitted").value == 0


def test_read_miss_generates_one_bus_request_and_hit_does_not():
    items = [
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x100)),
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x100)),
    ]
    kernel, core, bus = build_system(items)
    run_to_completion(kernel, core)
    assert core.counters.accesses == 2
    assert core.counters.bus_requests == 1
    assert core.counters.l1_hits == 1


def test_write_through_store_always_goes_to_bus():
    items = [
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x80, access=AccessType.WRITE)),
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x80, access=AccessType.WRITE)),
    ]
    kernel, core, bus = build_system(items)
    run_to_completion(kernel, core)
    assert core.counters.bus_requests == 2


def test_atomic_access_always_goes_to_bus():
    items = [
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x40)),
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x40, access=AccessType.ATOMIC)),
    ]
    kernel, core, bus = build_system(items)
    run_to_completion(kernel, core)
    assert core.counters.bus_requests == 2


def test_core_blocks_while_request_in_flight():
    items = [TraceItem(compute_cycles=0, access=MemoryAccess(address=0x100))]
    kernel, core, bus = build_system(items, bus_latency=10)
    kernel.step(3)  # L1 lookup done, request issued, waiting
    assert core.state is CoreState.WAITING_BUS
    assert core.has_request_ready
    kernel.add_stop_condition(lambda: core.finished)
    kernel.run(max_cycles=100)
    assert core.finished


def test_execution_time_accounts_for_bus_latency():
    """One isolated miss costs: 1 cycle L1 + the bus hold time (grant is
    immediate on an idle bus) + 1 completion cycle."""
    items = [TraceItem(compute_cycles=0, access=MemoryAccess(address=0x100))]
    kernel, core, bus = build_system(items, bus_latency=8)
    run_to_completion(kernel, core)
    assert core.counters.execution_cycles == pytest.approx(1 + 8 + 1, abs=1)
    assert core.counters.bus_hold_cycles == 8
    assert core.counters.bus_wait_cycles <= 2


def test_counters_latency_distribution_recorded():
    items = [
        TraceItem(compute_cycles=2, access=MemoryAccess(address=0x100)),
        TraceItem(compute_cycles=2, access=MemoryAccess(address=0x900)),
    ]
    kernel, core, bus = build_system(items, bus_latency=6)
    run_to_completion(kernel, core)
    assert len(core.counters.request_latencies) == 2
    assert all(latency >= 6 for latency in core.counters.request_latencies)


def test_items_completed_counts_every_trace_item():
    items = [
        TraceItem(compute_cycles=1),
        TraceItem(compute_cycles=0, access=MemoryAccess(address=0x100)),
        TraceItem(compute_cycles=3),
    ]
    kernel, core, bus = build_system(items)
    run_to_completion(kernel, core)
    assert core.counters.items_completed == 3


def test_reset_restores_power_on_state():
    items = [TraceItem(compute_cycles=0, access=MemoryAccess(address=0x100))]
    kernel, core, bus = build_system(items)
    run_to_completion(kernel, core)
    core.reset()
    assert core.state is CoreState.COMPUTING
    assert core.counters.bus_requests == 0
    assert not core.finished


def test_empty_trace_finishes_immediately():
    kernel, core, bus = build_system([])
    kernel.step(2)
    assert core.finished
