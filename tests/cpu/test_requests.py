"""Tests for the trace item descriptors."""

import pytest

from repro.bus.transaction import AccessType
from repro.cpu.requests import MemoryAccess, TraceItem


def test_memory_access_predicates():
    read = MemoryAccess(address=0x10)
    write = MemoryAccess(address=0x10, access=AccessType.WRITE)
    atomic = MemoryAccess(address=0x10, access=AccessType.ATOMIC)
    assert not read.is_write and not read.is_atomic
    assert write.is_write
    assert atomic.is_atomic


def test_trace_item_defaults_to_pure_compute():
    item = TraceItem(compute_cycles=5)
    assert item.access is None
    assert item.compute_cycles == 5


def test_negative_compute_rejected():
    with pytest.raises(ValueError):
        TraceItem(compute_cycles=-1)


def test_trace_items_are_immutable():
    item = TraceItem(compute_cycles=1, access=MemoryAccess(address=4))
    with pytest.raises(AttributeError):
        item.compute_cycles = 7
