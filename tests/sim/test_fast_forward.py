"""Unit tests for the kernel's event-aware fast-forwarding."""

import pytest

from repro.sim.component import Component
from repro.sim.kernel import Kernel


class PeriodicWorker(Component):
    """Acts every ``period`` cycles, sleeps (with a wake hint) in between."""

    def __init__(self, name: str, period: int) -> None:
        super().__init__(name)
        self.period = period
        self.action_cycles: list[int] = []
        self.idle_cycles_seen = 0
        self.fast_forwarded = 0

    def tick(self) -> None:
        if self.now % self.period == 0:
            self.action_cycles.append(self.now)
        else:
            self.idle_cycles_seen += 1

    def next_event(self, now: int) -> int | None:
        if now % self.period == 0:
            return now
        return now + (self.period - now % self.period)

    def fast_forward(self, cycles: int) -> None:
        self.fast_forwarded += cycles


class Sleeper(Component):
    """A component with no self-scheduled events at all."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ticks = 0

    def tick(self) -> None:
        self.ticks += 1

    def next_event(self, now: int) -> int | None:
        return None


class DefaultHinter(Component):
    """Overrides tick but keeps the base (conservative) wake hint."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ticks = 0

    def tick(self) -> None:
        self.ticks += 1


def test_run_jumps_between_events_and_replays_accounting():
    kernel = Kernel()
    worker = kernel.register(PeriodicWorker("w", period=100))
    kernel.run(max_cycles=1000)
    assert kernel.clock.cycle == 1000
    # The worker acted on exactly the cycles plain stepping would have...
    assert worker.action_cycles == list(range(0, 1000, 100))
    # ...and every dead cycle was jumped, not stepped.
    assert worker.idle_cycles_seen == 0
    assert kernel.cycles_skipped == worker.fast_forwarded == 1000 - 10


def test_component_with_default_hint_disables_skipping():
    kernel = Kernel()
    worker = kernel.register(PeriodicWorker("w", period=100))
    plain = kernel.register(DefaultHinter("plain"))
    kernel.run(max_cycles=500)
    assert kernel.cycles_skipped == 0
    assert plain.ticks == 500
    assert worker.action_cycles == list(range(0, 500, 100))


def test_fast_forward_switch_disables_skipping():
    kernel = Kernel(fast_forward=False)
    worker = kernel.register(PeriodicWorker("w", period=100))
    kernel.run(max_cycles=500)
    assert kernel.cycles_skipped == 0
    assert worker.idle_cycles_seen == 500 - 5


def test_all_quiescent_jumps_straight_to_the_cycle_budget():
    kernel = Kernel()
    sleeper = kernel.register(Sleeper("s"))
    executed = kernel.run(max_cycles=12345)
    assert executed == 12345
    assert kernel.cycles_skipped == 12345
    assert sleeper.ticks == 0
    assert kernel.truncated


def test_state_based_stop_condition_checked_after_each_jump():
    kernel = Kernel()
    worker = kernel.register(PeriodicWorker("w", period=50))
    kernel.add_stop_condition(lambda: len(worker.action_cycles) >= 3)
    kernel.run(max_cycles=10_000)
    # Actions at 0, 50 and 100; the predicate flips during the cycle-100 step
    # and is observed right after it — never later, despite the jumps.
    assert kernel.clock.cycle == 101
    assert kernel.stop_condition_fired


def test_clock_based_stop_condition_with_hint_fires_exactly():
    kernel = Kernel()
    kernel.register(Sleeper("s"))
    deadline = 777
    kernel.add_stop_condition(
        lambda: kernel.clock.cycle >= deadline,
        next_event=lambda now: deadline,
    )
    kernel.run(max_cycles=10_000)
    assert kernel.clock.cycle == deadline
    assert kernel.stop_condition_fired


def test_reset_clears_skip_accounting():
    kernel = Kernel()
    kernel.register(Sleeper("s"))
    kernel.run(max_cycles=100)
    assert kernel.cycles_skipped == 100
    kernel.reset()
    assert kernel.cycles_skipped == 0
