"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import Clock


def test_clock_starts_at_zero():
    assert Clock().cycle == 0


def test_advance_by_one_and_many():
    clock = Clock()
    assert clock.advance() == 1
    assert clock.advance(9) == 10
    assert clock.cycle == 10
    assert clock.now == 10


def test_advance_negative_rejected():
    with pytest.raises(ValueError):
        Clock().advance(-1)


def test_advance_zero_is_noop():
    clock = Clock()
    clock.advance(0)
    assert clock.cycle == 0


def test_reset_returns_to_zero():
    clock = Clock()
    clock.advance(42)
    clock.reset()
    assert clock.cycle == 0


def test_cycles_to_seconds_at_100mhz():
    clock = Clock(frequency_hz=100_000_000.0)
    assert clock.cycles_to_seconds(100_000_000) == pytest.approx(1.0)
    assert clock.cycles_to_seconds(56) == pytest.approx(56e-8)


def test_seconds_to_cycles_round_trip():
    clock = Clock(frequency_hz=100_000_000.0)
    assert clock.seconds_to_cycles(1.0) == 100_000_000
    assert clock.seconds_to_cycles(clock.cycles_to_seconds(12345)) == 12345
