"""Tests for the event trace recorder."""

from repro.sim.trace import NullTraceRecorder, TraceRecorder


def test_records_events_with_payload():
    recorder = TraceRecorder()
    recorder.record(5, "bus", "bus.grant", master=2, duration=28)
    assert len(recorder) == 1
    event = recorder.events[0]
    assert event.cycle == 5
    assert event.source == "bus"
    assert event.kind == "bus.grant"
    assert event.payload == {"master": 2, "duration": 28}


def test_kind_filter_drops_other_kinds():
    recorder = TraceRecorder(kinds=["bus.grant"])
    recorder.record(1, "bus", "bus.request")
    recorder.record(2, "bus", "bus.grant")
    assert len(recorder) == 1
    assert recorder.events[0].kind == "bus.grant"


def test_capacity_keeps_most_recent():
    recorder = TraceRecorder(capacity=3)
    for cycle in range(10):
        recorder.record(cycle, "x", "k")
    assert [e.cycle for e in recorder.events] == [7, 8, 9]


def test_filter_by_kind_source_and_predicate():
    recorder = TraceRecorder()
    recorder.record(1, "bus", "bus.grant", master=0)
    recorder.record(2, "bus", "bus.grant", master=1)
    recorder.record(3, "cache", "cache.miss")
    assert len(recorder.filter(kind="bus.grant")) == 2
    assert len(recorder.filter(source="cache")) == 1
    only_master1 = recorder.filter(predicate=lambda e: e.payload.get("master") == 1)
    assert [e.cycle for e in only_master1] == [2]


def test_disabled_recorder_drops_events():
    recorder = TraceRecorder()
    recorder.enabled = False
    recorder.record(1, "x", "k")
    assert len(recorder) == 0


def test_clear_removes_events():
    recorder = TraceRecorder()
    recorder.record(1, "x", "k")
    recorder.clear()
    assert len(recorder) == 0


def test_null_recorder_never_records():
    recorder = NullTraceRecorder()
    recorder.record(1, "x", "k")
    assert len(recorder) == 0
