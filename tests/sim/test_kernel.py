"""Tests for the cycle-driven kernel."""

from typing import ClassVar

import pytest

from repro.sim.component import Component
from repro.sim.errors import SchedulingError
from repro.sim.kernel import Kernel


class TickCounter(Component):
    """Counts its tick/post_tick invocations and the cycles it saw."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.ticks = 0
        self.post_ticks = 0
        self.seen_cycles: list[int] = []

    def tick(self) -> None:
        self.ticks += 1
        self.seen_cycles.append(self.now)

    def post_tick(self) -> None:
        self.post_ticks += 1

    def reset(self) -> None:
        self.ticks = 0
        self.post_ticks = 0
        self.seen_cycles = []


class OrderProbe(Component):
    """Records the global order in which components were evaluated."""

    order: ClassVar[list[str]] = []

    def tick(self) -> None:
        OrderProbe.order.append(self.name)


def test_step_ticks_every_component_once_per_cycle():
    kernel = Kernel()
    a, b = TickCounter("a"), TickCounter("b")
    kernel.register_all([a, b])
    kernel.step(3)
    assert a.ticks == b.ticks == 3
    assert a.post_ticks == b.post_ticks == 3
    assert kernel.clock.cycle == 3
    assert a.seen_cycles == [0, 1, 2]


def test_components_ticked_in_registration_order():
    OrderProbe.order = []
    kernel = Kernel()
    kernel.register(OrderProbe("first"))
    kernel.register(OrderProbe("second"))
    kernel.step()
    assert OrderProbe.order == ["first", "second"]


def test_duplicate_component_name_rejected():
    kernel = Kernel()
    kernel.register(TickCounter("dup"))
    with pytest.raises(SchedulingError):
        kernel.register(TickCounter("dup"))


def test_component_lookup_by_name():
    kernel = Kernel()
    component = TickCounter("x")
    kernel.register(component)
    assert kernel.component("x") is component
    with pytest.raises(KeyError):
        kernel.component("missing")


def test_unbound_component_has_no_kernel():
    component = TickCounter("loose")
    with pytest.raises(RuntimeError):
        _ = component.kernel


def test_run_stops_on_condition():
    kernel = Kernel()
    counter = TickCounter("c")
    kernel.register(counter)
    kernel.add_stop_condition(lambda: counter.ticks >= 10)
    executed = kernel.run(max_cycles=1000)
    assert executed == 10
    assert kernel.finished


def test_run_respects_max_cycles():
    kernel = Kernel()
    kernel.register(TickCounter("c"))
    executed = kernel.run(max_cycles=25)
    assert executed == 25


def test_finished_kernel_cannot_run_or_step_again():
    kernel = Kernel()
    kernel.register(TickCounter("c"))
    kernel.run(max_cycles=1)
    with pytest.raises(SchedulingError):
        kernel.run(max_cycles=1)
    with pytest.raises(SchedulingError):
        kernel.step()


def test_reset_restores_clock_and_components():
    kernel = Kernel()
    counter = TickCounter("c")
    kernel.register(counter)
    kernel.run(max_cycles=5)
    kernel.reset()
    assert kernel.clock.cycle == 0
    assert counter.ticks == 0
    assert not kernel.finished


def test_kernel_exposes_named_random_streams():
    kernel = Kernel(seed=42, run_index=1)
    first = kernel.streams.stream("demo").integers(0, 1 << 30)
    again = Kernel(seed=42, run_index=1).streams.stream("demo").integers(0, 1 << 30)
    assert first == again
