"""Tests for counters, running statistics and histograms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, Histogram, RunningStats, StatGroup


class TestCounter:
    def test_increment_default_and_amount(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_rejected_negative_increment_leaves_value_untouched(self):
        # The fast path adds speculatively and the slow path rolls back; a
        # rejected call must not corrupt the count.
        counter = Counter("c", value=7)
        with pytest.raises(ValueError):
            counter.increment(-3)
        assert counter.value == 7

    def test_reset(self):
        counter = Counter("c", value=9)
        counter.reset()
        assert counter.value == 0


class TestRunningStats:
    def test_empty_stats_are_zero(self):
        stats = RunningStats("s")
        assert stats.mean == 0.0
        assert stats.stddev == 0.0
        assert stats.minimum == 0.0
        assert stats.maximum == 0.0

    def test_known_values(self):
        stats = RunningStats("s")
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0
        assert stats.count == 8
        assert stats.total == pytest.approx(40.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_single_sample_has_zero_variance(self):
        stats = RunningStats("s")
        stats.add(3.0)
        assert stats.variance == 0.0

    def test_as_dict_keys(self):
        stats = RunningStats("s")
        stats.add(1.0)
        assert set(stats.as_dict()) == {"count", "mean", "stddev", "min", "max", "total"}

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_batch_computation(self, values):
        stats = RunningStats("s")
        stats.extend(values)
        mean = sum(values) / len(values)
        assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.variance == pytest.approx(variance, rel=1e-6, abs=1e-6)
        assert stats.stddev == pytest.approx(math.sqrt(variance), rel=1e-6, abs=1e-6)


class TestHistogram:
    def test_add_and_frequency(self):
        hist = Histogram("h")
        hist.add(5)
        hist.add(5, weight=2)
        hist.add(7)
        assert hist.frequency(5) == 3
        assert hist.frequency(7) == 1
        assert hist.frequency(6) == 0
        assert hist.count == 4

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").add(1, weight=0)

    def test_mean_min_max(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 4):
            hist.add(value)
        assert hist.mean == pytest.approx(2.5)
        assert hist.minimum == 1
        assert hist.maximum == 4

    def test_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.add(value)
        assert hist.percentile(0.5) == 50
        assert hist.percentile(0.99) == 99
        assert hist.percentile(1.0) == 100

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("h").percentile(0.9) == 0


class TestStatGroup:
    def test_lazily_creates_members(self):
        group = StatGroup("g")
        group.counter("events").increment()
        group.sample("latency").add(3.0)
        group.histogram("sizes").add(2)
        assert group.counter("events").value == 1
        assert group.sample("latency").count == 1
        assert group.histogram("sizes").count == 1

    def test_as_dict_flattens(self):
        group = StatGroup("g")
        group.counter("events").increment(2)
        group.sample("latency").add(3.0)
        flat = group.as_dict()
        assert flat["events"] == 2
        assert flat["latency"]["count"] == 1

    def test_reset_clears_everything(self):
        group = StatGroup("g")
        group.counter("events").increment(2)
        group.sample("latency").add(3.0)
        group.histogram("sizes").add(2)
        group.reset()
        assert group.counter("events").value == 0
        assert group.sample("latency").count == 0
        assert group.histogram("sizes").count == 0
