"""Tests for counters, running statistics and histograms."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.stats import Counter, Gauge, Histogram, RunningStats, StatGroup


class TestCounter:
    def test_increment_default_and_amount(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(4)
        assert counter.value == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_rejected_negative_increment_leaves_value_untouched(self):
        # The fast path adds speculatively and the slow path rolls back; a
        # rejected call must not corrupt the count.
        counter = Counter("c", value=7)
        with pytest.raises(ValueError):
            counter.increment(-3)
        assert counter.value == 7

    def test_reset(self):
        counter = Counter("c", value=9)
        counter.reset()
        assert counter.value == 0

    def test_merge_adds_counts(self):
        left = Counter("c", value=3)
        left.merge(Counter("c", value=4))
        assert left.value == 7


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_merge_is_last_writer_wins(self):
        left = Gauge("g", value=5.0)
        left.merge(Gauge("g", value=1.5))
        assert left.value == 1.5

    def test_reset(self):
        gauge = Gauge("g", value=4.0)
        gauge.reset()
        assert gauge.value == 0.0


class TestRunningStats:
    def test_empty_stats_are_zero(self):
        stats = RunningStats("s")
        assert stats.mean == 0.0
        assert stats.stddev == 0.0
        assert stats.minimum == 0.0
        assert stats.maximum == 0.0

    def test_known_values(self):
        stats = RunningStats("s")
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0
        assert stats.count == 8
        assert stats.total == pytest.approx(40.0)
        assert stats.variance == pytest.approx(32.0 / 7.0)

    def test_single_sample_has_zero_variance(self):
        stats = RunningStats("s")
        stats.add(3.0)
        assert stats.variance == 0.0

    def test_as_dict_keys(self):
        stats = RunningStats("s")
        stats.add(1.0)
        assert set(stats.as_dict()) == {"count", "mean", "stddev", "min", "max", "total"}

    def test_merge_into_empty_adopts_other(self):
        left = RunningStats("s")
        right = RunningStats("s")
        right.extend([1.0, 2.0, 3.0])
        left.merge(right)
        assert left.count == 3
        assert left.mean == pytest.approx(2.0)
        assert left.minimum == 1.0
        assert left.maximum == 3.0

    def test_merge_empty_other_is_a_no_op(self):
        left = RunningStats("s")
        left.extend([1.0, 2.0])
        left.merge(RunningStats("s"))
        assert left.count == 2
        assert left.mean == pytest.approx(1.5)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=30),
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=0, max_size=30),
    )
    def test_merge_matches_single_stream(self, left_values, right_values):
        """Chan's merge must equal one stream that saw both sample sets."""
        merged = RunningStats("s")
        merged.extend(left_values)
        other = RunningStats("s")
        other.extend(right_values)
        merged.merge(other)

        sequential = RunningStats("s")
        sequential.extend(left_values + right_values)
        assert merged.count == sequential.count
        assert merged.total == pytest.approx(sequential.total, rel=1e-9, abs=1e-6)
        assert merged.mean == pytest.approx(sequential.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(sequential.variance, rel=1e-6, abs=1e-4)
        assert merged.minimum == sequential.minimum
        assert merged.maximum == sequential.maximum

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=50))
    def test_matches_batch_computation(self, values):
        stats = RunningStats("s")
        stats.extend(values)
        mean = sum(values) / len(values)
        assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
        assert stats.variance == pytest.approx(variance, rel=1e-6, abs=1e-6)
        assert stats.stddev == pytest.approx(math.sqrt(variance), rel=1e-6, abs=1e-6)


class TestHistogram:
    def test_add_and_frequency(self):
        hist = Histogram("h")
        hist.add(5)
        hist.add(5, weight=2)
        hist.add(7)
        assert hist.frequency(5) == 3
        assert hist.frequency(7) == 1
        assert hist.frequency(6) == 0
        assert hist.count == 4

    def test_invalid_weight_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").add(1, weight=0)

    def test_mean_min_max(self):
        hist = Histogram("h")
        for value in (1, 2, 3, 4):
            hist.add(value)
        assert hist.mean == pytest.approx(2.5)
        assert hist.minimum == 1
        assert hist.maximum == 4

    def test_percentiles(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.add(value)
        assert hist.percentile(0.5) == 50
        assert hist.percentile(0.99) == 99
        assert hist.percentile(1.0) == 100

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(1.5)

    def test_empty_histogram_percentile_is_zero(self):
        assert Histogram("h").percentile(0.9) == 0

    def test_bucket_edges(self):
        """Values landing exactly on existing bins fold into them; adjacent
        integers stay distinct buckets."""
        hist = Histogram("h")
        hist.add(9)
        hist.add(10)
        hist.add(10)
        hist.add(11)
        assert hist.items() == [(9, 1), (10, 2), (11, 1)]
        assert hist.frequency(10) == 2
        # percentile(0) needs at least the first bucket's smallest value.
        assert hist.percentile(0.0) == 9
        assert hist.percentile(1.0) == 11

    def test_float_values_truncate_to_integer_bins(self):
        hist = Histogram("h")
        hist.add(3.9)
        assert hist.frequency(3) == 1
        assert hist.frequency(4) == 0

    def test_merge_folds_bins_and_counts(self):
        left = Histogram("h")
        left.add(1, weight=2)
        left.add(5)
        right = Histogram("h")
        right.add(1)
        right.add(9, weight=3)
        left.merge(right)
        assert left.items() == [(1, 3), (5, 1), (9, 3)]
        assert left.count == 7
        assert left.minimum == 1
        assert left.maximum == 9

    def test_merge_leaves_other_untouched(self):
        left = Histogram("h")
        right = Histogram("h")
        right.add(4)
        left.merge(right)
        left.add(4)
        assert right.count == 1
        assert right.frequency(4) == 1

    def test_as_dict_snapshot_is_independent(self):
        hist = Histogram("h")
        hist.add(2)
        snapshot = hist.as_dict()
        hist.add(100, weight=5)
        assert snapshot["count"] == 1
        assert snapshot["max"] == 2


class TestStatGroup:
    def test_lazily_creates_members(self):
        group = StatGroup("g")
        group.counter("events").increment()
        group.sample("latency").add(3.0)
        group.histogram("sizes").add(2)
        assert group.counter("events").value == 1
        assert group.sample("latency").count == 1
        assert group.histogram("sizes").count == 1

    def test_as_dict_flattens(self):
        group = StatGroup("g")
        group.counter("events").increment(2)
        group.sample("latency").add(3.0)
        flat = group.as_dict()
        assert flat["events"] == 2
        assert flat["latency"]["count"] == 1

    def test_reset_clears_everything(self):
        group = StatGroup("g")
        group.counter("events").increment(2)
        group.sample("latency").add(3.0)
        group.histogram("sizes").add(2)
        group.reset()
        assert group.counter("events").value == 0
        assert group.sample("latency").count == 0
        assert group.histogram("sizes").count == 0

    def test_merge_folds_every_member_kind(self):
        left = StatGroup("g")
        left.counter("events").increment(2)
        left.sample("latency").add(1.0)
        left.histogram("sizes").add(3)
        right = StatGroup("g")
        right.counter("events").increment(5)
        right.sample("latency").add(3.0)
        right.histogram("sizes").add(3, weight=2)
        left.merge(right)
        assert left.counter("events").value == 7
        assert left.sample("latency").count == 2
        assert left.sample("latency").mean == pytest.approx(2.0)
        assert left.histogram("sizes").frequency(3) == 3

    def test_merge_creates_missing_members_by_name(self):
        left = StatGroup("g")
        right = StatGroup("g")
        right.counter("only_right").increment(4)
        right.sample("only_right_s").add(2.0)
        right.histogram("only_right_h").add(1)
        left.merge(right)
        assert left.counter("only_right").value == 4
        assert left.sample("only_right_s").count == 1
        assert left.histogram("only_right_h").count == 1

    def test_as_dict_snapshot_is_independent(self):
        """Mutating the group after as_dict must not change the snapshot."""
        group = StatGroup("g")
        group.counter("events").increment(2)
        group.sample("latency").add(3.0)
        group.histogram("sizes").add(2)
        snapshot = group.as_dict()
        group.counter("events").increment(10)
        group.sample("latency").add(99.0)
        group.histogram("sizes").add(50)
        assert snapshot["events"] == 2
        assert snapshot["latency"]["count"] == 1
        assert snapshot["sizes"]["count"] == 1
