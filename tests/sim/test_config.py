"""Tests for the platform configuration dataclasses."""

import pytest

from repro.sim.config import BusTimings, CacheGeometry, CBAParameters, PlatformConfig
from repro.sim.errors import ConfigurationError


class TestBusTimings:
    def test_paper_defaults(self):
        timings = BusTimings()
        assert timings.l2_hit_read == 5
        assert timings.memory_latency == 28
        assert timings.max_latency == 56
        assert timings.l2_miss_clean() == 28
        assert timings.l2_miss_dirty() == 56
        assert timings.atomic() == 56

    def test_max_latency_must_cover_two_memory_accesses(self):
        with pytest.raises(ConfigurationError):
            BusTimings(memory_latency=28, max_latency=40)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            BusTimings(bus_overhead=-1)

    def test_nonpositive_latencies_rejected(self):
        with pytest.raises(ConfigurationError):
            BusTimings(l2_hit_read=0)
        with pytest.raises(ConfigurationError):
            BusTimings(memory_latency=0)


class TestCacheGeometry:
    def test_derived_quantities(self):
        geometry = CacheGeometry(size_bytes=4096, line_bytes=32, associativity=4)
        assert geometry.num_lines == 128
        assert geometry.num_sets == 32

    def test_size_must_be_multiple_of_way_size(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=1000, line_bytes=32, associativity=4)

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=960, line_bytes=24, associativity=4)

    def test_positive_fields_required(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size_bytes=0, line_bytes=32, associativity=1)


class TestCBAParameters:
    def test_homogeneous_defaults_match_paper(self):
        params = CBAParameters(max_latency=56, num_cores=4)
        assert params.scale == 4
        # The paper quotes a saturation value of "228 (56x4)"; the exact
        # product N * MaxL is 224, which is what the model uses.
        assert params.scaled_full_budget == 224
        assert params.drain_per_busy_cycle == 4
        assert params.share_for(0) == 1
        assert params.cap_for(0) == params.scaled_full_budget
        assert params.initial_for(0) == params.scaled_full_budget

    def test_heterogeneous_shares_change_scale(self):
        params = CBAParameters(max_latency=56, num_cores=4, replenish_shares=(3, 1, 1, 1))
        assert params.scale == 6
        assert params.scaled_full_budget == 6 * 56
        assert params.share_for(0) == 3

    def test_share_count_must_match_cores(self):
        with pytest.raises(ConfigurationError):
            CBAParameters(max_latency=56, num_cores=4, replenish_shares=(1, 1))

    def test_caps_cannot_be_below_full_budget(self):
        with pytest.raises(ConfigurationError):
            CBAParameters(max_latency=56, num_cores=4, budget_caps=(10, 224, 224, 224))

    def test_initial_budget_clamped_to_cap(self):
        params = CBAParameters(max_latency=56, num_cores=4, initial_budget=10_000)
        assert params.initial_for(0) == params.cap_for(0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CBAParameters(max_latency=0, num_cores=4)
        with pytest.raises(ConfigurationError):
            CBAParameters(max_latency=56, num_cores=0)
        with pytest.raises(ConfigurationError):
            CBAParameters(max_latency=56, num_cores=4, initial_budget=-1)


class TestPlatformConfig:
    def test_defaults_are_consistent(self):
        config = PlatformConfig()
        assert config.num_cores == 4
        assert config.cba.max_latency == config.bus_timings.max_latency

    def test_core_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(num_cores=2)

    def test_maxl_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(
                cba=CBAParameters(max_latency=28, num_cores=4),
            )

    def test_with_updates_creates_modified_copy(self):
        config = PlatformConfig()
        updated = config.with_updates(use_cba=True)
        assert updated.use_cba
        assert not config.use_cba
