"""Unit tests for the kernel's heap-based event queue.

The queue replaces the per-component ``next_event`` poll with pushed wakes
plus lazy generation-based invalidation.  These tests pin the contracts the
platform relies on: wakes persist until superseded, staleness biases toward
execution (never toward skipping), pushed and polled components compose, and
the ``run_horizon``/truncation/resumption behaviour of ``run`` is identical
under both scheduling mechanisms.
"""

import pytest

from repro.sim.component import Component
from repro.sim.errors import SchedulingError
from repro.sim.kernel import EventQueue, Kernel


class PeriodicPusher(Component):
    """Acts every ``period`` cycles, pushing its next wake from each action."""

    event_driven = True

    def __init__(self, name: str, period: int) -> None:
        super().__init__(name)
        self.period = period
        self.action_cycles: list[int] = []
        self.idle_cycles_seen = 0
        self.fast_forwarded = 0

    def tick(self) -> None:
        if self.now % self.period == 0:
            self.action_cycles.append(self.now)
            self.schedule_wake(self.now + self.period)
        else:
            self.idle_cycles_seen += 1

    def next_event(self, now: int) -> int | None:
        if now % self.period == 0:
            return now
        return now + (self.period - now % self.period)

    def fast_forward(self, cycles: int) -> None:
        self.fast_forwarded += cycles

    def reset(self) -> None:
        self.action_cycles = []
        self.idle_cycles_seen = 0
        self.fast_forwarded = 0


class PolledWorker(PeriodicPusher):
    """The same periodic behaviour via the poll fallback (no pushes)."""

    event_driven = False

    def tick(self) -> None:
        if self.now % self.period == 0:
            self.action_cycles.append(self.now)
        else:
            self.idle_cycles_seen += 1


class OneShot(Component):
    """Schedules a single wake at a fixed cycle and records its ticks."""

    event_driven = True

    def __init__(self, name: str, wake: int) -> None:
        super().__init__(name)
        self.wake = wake
        self.ticked_at: list[int] = []

    def tick(self) -> None:
        self.ticked_at.append(self.now)
        if self.now >= self.wake:
            self.cancel_wake()

    def next_event(self, now: int) -> int | None:
        return self.wake if now <= self.wake else None

    def fast_forward(self, cycles: int) -> None:
        pass


# ----------------------------------------------------------------------
# EventQueue mechanics
# ----------------------------------------------------------------------


def test_schedule_and_next_wake():
    queue = EventQueue()
    a, b = queue.add_slot(), queue.add_slot()
    queue.schedule(a, 50)
    queue.schedule(b, 20)
    assert queue.next_wake() == 20
    assert queue.scheduled_cycle(a) == 50
    assert queue.scheduled_cycle(b) == 20


def test_reschedule_supersedes_earlier_entry():
    queue = EventQueue()
    slot = queue.add_slot()
    queue.schedule(slot, 10)
    queue.schedule(slot, 30)  # the 10-entry is now stale
    assert queue.next_wake() == 30
    queue.schedule(slot, 5)
    assert queue.next_wake() == 5


def test_cancel_invalidates_lazily():
    queue = EventQueue()
    slot = queue.add_slot()
    queue.schedule(slot, 10)
    queue.cancel(slot)
    assert queue.next_wake() is None
    assert queue.scheduled_cycle(slot) is None
    # Cancelling an empty slot is a no-op.
    queue.cancel(slot)
    assert queue.next_wake() is None


def test_same_cycle_reschedule_is_deduplicated():
    queue = EventQueue()
    slot = queue.add_slot()
    queue.schedule(slot, 10)
    for _ in range(100):
        queue.schedule(slot, 10)
    assert len(queue) == 1  # no heap churn for re-confirmations
    assert queue.next_wake() == 10


def test_entries_persist_until_superseded():
    queue = EventQueue()
    slot = queue.add_slot()
    queue.schedule(slot, 10)
    # next_wake leaves the live entry in place; asking again returns it.
    assert queue.next_wake() == 10
    assert queue.next_wake() == 10


def test_clear_drops_everything():
    queue = EventQueue()
    slots = [queue.add_slot() for _ in range(3)]
    for i, slot in enumerate(slots):
        queue.schedule(slot, 10 + i)
    queue.clear()
    assert queue.next_wake() is None
    assert all(queue.scheduled_cycle(slot) is None for slot in slots)
    # Slots survive a clear and can be rescheduled.
    queue.schedule(slots[1], 7)
    assert queue.next_wake() == 7


def test_stale_entries_are_discarded_on_peek():
    queue = EventQueue()
    slot = queue.add_slot()
    # Each schedule supersedes the previous, earlier-cycle entry, so the
    # stale ones pile up at the heap top...
    for cycle in range(1, 101):
        queue.schedule(slot, cycle)
    assert len(queue) == 100
    # ...and one peek pops all 99 of them on its way to the live entry.
    assert queue.next_wake() == 100
    assert len(queue) == 1


# ----------------------------------------------------------------------
# Kernel integration
# ----------------------------------------------------------------------


def test_pushed_wakes_jump_between_events():
    kernel = Kernel()
    worker = kernel.register(PeriodicPusher("w", period=100))
    kernel.run(max_cycles=1000)
    assert worker.action_cycles == list(range(0, 1000, 100))
    assert worker.idle_cycles_seen == 0
    assert kernel.cycles_skipped == worker.fast_forwarded == 1000 - 10


def test_pushed_and_polled_components_compose():
    kernel = Kernel()
    pusher = kernel.register(PeriodicPusher("push", period=100))
    polled = kernel.register(PolledWorker("poll", period=60))
    kernel.run(max_cycles=600)
    assert pusher.action_cycles == list(range(0, 600, 100))
    assert polled.action_cycles == list(range(0, 600, 60))
    # Only the union of both schedules was executed.
    executed = 600 - kernel.cycles_skipped
    assert executed == len({c for c in range(600) if c % 100 == 0 or c % 60 == 0})


def test_queue_and_scan_modes_execute_identically():
    results = []
    for event_queue in (False, True):
        kernel = Kernel(event_queue=event_queue)
        pusher = kernel.register(PeriodicPusher("push", period=70))
        polled = kernel.register(PolledWorker("poll", period=45))
        kernel.run(max_cycles=1500)
        results.append(
            (
                pusher.action_cycles,
                polled.action_cycles,
                kernel.cycles_skipped,
                kernel.clock.cycle,
            )
        )
    assert results[0] == results[1]


def test_wake_exactly_on_run_horizon_is_not_executed():
    """A wake landing exactly on ``start + max_cycles`` belongs to the first
    cycle that may never run: the run must end at the horizon without ticking
    it, under both scheduling mechanisms."""
    for event_queue in (False, True):
        kernel = Kernel(event_queue=event_queue)
        component = kernel.register(OneShot("edge", wake=500))
        executed = kernel.run(max_cycles=500)
        assert executed == 500
        assert kernel.clock.cycle == 500
        assert component.ticked_at == []  # the horizon tick never ran
        assert kernel.truncated


def test_wake_one_cycle_before_horizon_is_executed():
    kernel = Kernel()
    component = kernel.register(OneShot("edge", wake=499))
    kernel.run(max_cycles=500)
    assert component.ticked_at == [499]


def test_simultaneous_wakes_tick_once_in_registration_order():
    """Two components waking on the same cycle share one executed cycle."""
    order: list[str] = []

    class Ordered(OneShot):
        def tick(self) -> None:
            order.append(self.name)
            super().tick()

    kernel = Kernel()
    first = kernel.register(Ordered("first", wake=123))
    second = kernel.register(Ordered("second", wake=123))
    kernel.run(max_cycles=1000)
    assert first.ticked_at == second.ticked_at == [123]
    assert order == ["first", "second"]
    assert kernel.cycles_skipped == 1000 - 1


def test_stale_wake_degrades_to_stepping_never_to_skipping():
    """A live entry whose component stopped rescheduling forces execution
    from its cycle on — the safe direction (a tick too many is uniform
    bookkeeping; a tick too few would change behaviour)."""

    class Stale(Component):
        event_driven = True

        def __init__(self) -> None:
            super().__init__("stale")
            self.ticks = 0

        def tick(self) -> None:
            self.ticks += 1  # never reschedules, never cancels

        def next_event(self, now: int) -> int | None:
            return 10

    kernel = Kernel()
    component = kernel.register(Stale())
    kernel.run(max_cycles=20)
    # Cycles 0..9 were skipped; from the stale wake at 10 every cycle ran.
    assert kernel.cycles_skipped == 10
    assert component.ticks == 10


def test_step_after_run_still_raises_and_reset_resumes():
    """The finished guard survives the event-queue rewrite: resumption goes
    through reset(), which re-primes the heap from the components' hints and
    reproduces the run exactly."""
    kernel = Kernel()
    worker = kernel.register(PeriodicPusher("w", period=50))
    kernel.run(max_cycles=400)
    first = (list(worker.action_cycles), kernel.cycles_skipped)
    with pytest.raises(SchedulingError):
        kernel.step()
    with pytest.raises(SchedulingError):
        kernel.run(max_cycles=1)
    kernel.reset()
    assert kernel.scheduled_wake(worker) == 0  # re-primed from next_event(0)
    kernel.run(max_cycles=400)
    assert (list(worker.action_cycles), kernel.cycles_skipped) == first


def test_step_outside_run_ignores_the_queue():
    """Bare step() drives every cycle regardless of scheduled wakes."""
    kernel = Kernel()
    worker = kernel.register(PeriodicPusher("w", period=100))
    kernel.step(5)
    assert worker.action_cycles == [0]
    assert worker.idle_cycles_seen == 4
    assert kernel.cycles_skipped == 0


def test_clock_hinted_stop_fires_exactly_with_queue():
    kernel = Kernel()
    kernel.register(PeriodicPusher("w", period=1000))
    deadline = 777
    kernel.add_stop_condition(
        lambda: kernel.clock.cycle >= deadline,
        next_event=lambda now: deadline,
    )
    kernel.run(max_cycles=10_000)
    assert kernel.clock.cycle == deadline
    assert kernel.stop_condition_fired


def test_schedule_wake_on_unbound_component_is_safe():
    component = PeriodicPusher("loose", period=10)
    component.schedule_wake(5)  # no kernel: must not raise
    component.cancel_wake()


def test_scan_mode_ignores_pushes():
    """With event_queue=False the kernel polls hints; pushes are accepted
    and ignored, so a pushing component behaves identically."""
    kernel = Kernel(event_queue=False)
    worker = kernel.register(PeriodicPusher("w", period=100))
    kernel.run(max_cycles=1000)
    assert worker.action_cycles == list(range(0, 1000, 100))
    assert worker.idle_cycles_seen == 0
    assert kernel.cycles_skipped == 1000 - 10
    assert kernel.scheduled_wake(worker) is None  # nothing was enqueued
