"""Tests for deterministic named random streams."""

from repro.sim.rng import RandomStreams, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derive_seed_differs_across_labels_and_seeds():
    base = derive_seed(1, "cache")
    assert derive_seed(1, "arbiter") != base
    assert derive_seed(2, "cache") != base
    assert derive_seed(1, "cache", 0) != base


def test_same_stream_name_returns_same_generator():
    streams = RandomStreams(seed=7)
    assert streams.stream("x") is streams.stream("x")


def test_streams_reproducible_across_instances():
    a = RandomStreams(seed=3, run_index=5)
    b = RandomStreams(seed=3, run_index=5)
    assert [a.integers("s", 0, 1000) for _ in range(10)] == [
        b.integers("s", 0, 1000) for _ in range(10)
    ]


def test_different_run_indices_give_different_sequences():
    a = RandomStreams(seed=3, run_index=0)
    b = RandomStreams(seed=3, run_index=1)
    seq_a = [a.integers("s", 0, 10**9) for _ in range(5)]
    seq_b = [b.integers("s", 0, 10**9) for _ in range(5)]
    assert seq_a != seq_b


def test_different_names_give_independent_sequences():
    streams = RandomStreams(seed=3)
    seq_a = [streams.integers("a", 0, 10**9) for _ in range(5)]
    seq_b = [streams.integers("b", 0, 10**9) for _ in range(5)]
    assert seq_a != seq_b


def test_spawn_changes_run_index_only():
    streams = RandomStreams(seed=9, run_index=0)
    child = streams.spawn(4)
    assert child.seed == 9
    assert child.run_index == 4


def test_permutation_contains_every_element():
    streams = RandomStreams(seed=11)
    perm = streams.permutation("p", 8)
    assert sorted(perm) == list(range(8))


def test_random_in_unit_interval():
    streams = RandomStreams(seed=13)
    values = [streams.random("u") for _ in range(100)]
    assert all(0.0 <= v < 1.0 for v in values)


def test_choice_picks_from_options():
    streams = RandomStreams(seed=17)
    options = [3, 5, 9]
    for _ in range(20):
        assert streams.choice("c", options) in options


def test_choice_empty_options_rejected():
    import pytest

    with pytest.raises(ValueError):
        RandomStreams(seed=1).choice("c", [])
