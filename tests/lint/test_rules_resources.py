"""Positive/negative fixtures for the fork/resource-safety (RES) rules."""

from __future__ import annotations


class TestSharedMemoryCleanup:
    def test_leak_on_all_paths_flagged(self, harness):
        source = """
            from multiprocessing import shared_memory

            def export(nbytes):
                segment = shared_memory.SharedMemory(create=True, size=nbytes)
                return segment.name
        """
        assert harness.rule_ids(source) == ["RES001"]

    def test_cleanup_in_finally_ok(self, harness):
        source = """
            from multiprocessing import shared_memory

            def adopt(name):
                segment = shared_memory.SharedMemory(name=name)
                try:
                    return bytes(segment.buf)
                finally:
                    segment.close()
                    segment.unlink()
        """
        assert harness.rule_ids(source) == []

    def test_cleanup_in_except_ok(self, harness):
        source = """
            from multiprocessing import shared_memory

            def export(data):
                segment = shared_memory.SharedMemory(create=True, size=len(data))
                try:
                    segment.buf[: len(data)] = data
                except BaseException:
                    segment.close()
                    segment.unlink()
                    raise
                segment.close()
                return segment.name
        """
        assert harness.rule_ids(source) == []

    def test_module_level_creation_flagged(self, harness):
        source = """
            from multiprocessing import shared_memory

            SEGMENT = shared_memory.SharedMemory(create=True, size=64)
        """
        assert harness.rule_ids(source) == ["RES001"]


class TestFlockPairing:
    def test_acquire_without_release_flagged(self, harness):
        source = """
            import fcntl

            def lock(handle):
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        """
        assert harness.rule_ids(source) == ["RES002"]

    def test_acquire_and_release_ok(self, harness):
        source = """
            import fcntl

            def lock(handle):
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)

            def unlock(handle):
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        """
        assert harness.rule_ids(source) == []

    def test_no_flock_ok(self, harness):
        assert harness.rule_ids("def f():\n    return 1\n") == []


class TestOsExit:
    def test_os_exit_flagged_outside_fault_injector(self, harness):
        source = """
            import os

            def crash():
                os._exit(1)
        """
        assert harness.rule_ids(source) == ["RES003"]

    def test_os_exit_allowed_in_configured_module(self, harness):
        source = """
            import os

            def crash():
                os._exit(1)
        """
        assert harness.rule_ids(source, os_exit_ok=True) == []

    def test_sys_exit_not_flagged(self, harness):
        source = """
            import sys

            def stop():
                sys.exit(1)
        """
        assert harness.rule_ids(source) == []
