"""Positive/negative fixtures for the component-contract (CON) rules."""

from __future__ import annotations


class TestEventDrivenWake:
    def test_event_driven_without_wake_flagged(self, harness):
        source = """
            class Sleeper:
                event_driven = True

                def tick(self):
                    self.count = self.count + 1
        """
        assert harness.rule_ids(source) == ["CON001"]

    def test_event_driven_with_schedule_wake_ok(self, harness):
        source = """
            class Waker:
                event_driven = True

                def start(self):
                    self.schedule_wake(self.clock.cycle + 4)
        """
        assert harness.rule_ids(source) == []

    def test_event_driven_with_private_wake_helper_ok(self, harness):
        source = """
            class Waker:
                event_driven = True

                def start(self):
                    self._wake_schedule(4)
        """
        assert harness.rule_ids(source) == []

    def test_poll_component_not_flagged(self, harness):
        source = """
            class Poller:
                event_driven = False

                def tick(self):
                    pass
        """
        assert harness.rule_ids(source) == []


class TestFastForwardHint:
    def test_fast_forward_without_next_event_flagged(self, harness):
        source = """
            class Skipper:
                def fast_forward(self, cycles):
                    self.cycle = self.cycle + cycles
        """
        assert harness.rule_ids(source) == ["CON002"]

    def test_fast_forward_with_next_event_ok(self, harness):
        source = """
            class Skipper:
                def fast_forward(self, cycles):
                    self.cycle = self.cycle + cycles

                def next_event(self):
                    return None
        """
        assert harness.rule_ids(source) == []


class TestSlottedValueClass:
    def test_unslotted_dataclass_flagged(self, harness):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True)
            class Request:
                address: int
        """
        assert harness.rule_ids(source, value_class=True) == ["CON003"]

    def test_slots_true_ok(self, harness):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Request:
                address: int
        """
        assert harness.rule_ids(source, value_class=True) == []

    def test_manual_slots_ok(self, harness):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Request:
                __slots__ = ("address",)
                address: int
        """
        assert harness.rule_ids(source, value_class=True) == []

    def test_outside_value_class_modules_not_flagged(self, harness):
        source = """
            from dataclasses import dataclass

            @dataclass
            class Report:
                title: str
        """
        assert harness.rule_ids(source, value_class=False) == []

    def test_plain_class_not_flagged(self, harness):
        source = """
            class Request:
                def __init__(self, address):
                    self.address = address
        """
        assert harness.rule_ids(source, value_class=True) == []
