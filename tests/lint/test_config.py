"""Configuration loading and the Python 3.10 minimal-TOML fallback."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.config import LintConfig, load_config, parse_minimal_toml
from repro.sim.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestLoadConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(tmp_path)
        assert config.paths == ("src/repro",)
        assert config.families_for("src/repro/sim/kernel.py") == frozenset()

    def test_full_table(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            """
            [tool.repro-lint]
            paths = ["src"]
            baseline = "base.json"

            [tool.repro-lint.scopes]
            determinism = ["src/sim"]
            hotpath = ["src/sim/component.py"]

            [tool.repro-lint.options]
            value-class-modules = ["src/sim/values.py"]
            os-exit-modules = ["src/faults.py"]
            """
        )
        config = load_config(tmp_path)
        assert config.paths == ("src",)
        assert config.baseline == "base.json"
        assert config.families_for("src/sim/clock.py") == {"determinism"}
        assert config.families_for("src/sim/component.py") == {
            "determinism",
            "hotpath",
        }
        assert config.families_for("src/other.py") == frozenset()
        assert config.is_value_class_module("src/sim/values.py")
        assert not config.is_value_class_module("src/sim/clock.py")
        assert config.allows_os_exit("src/faults.py")

    def test_unknown_family_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint.scopes]\nnonsense = [\"src\"]\n"
        )
        with pytest.raises(ConfigurationError, match="unknown repro-lint rule family"):
            load_config(tmp_path)

    def test_non_string_paths_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.repro-lint]\npaths = [1]\n")
        with pytest.raises(ConfigurationError, match="array of strings"):
            load_config(tmp_path)

    def test_scope_prefix_matches_whole_components(self):
        config = LintConfig(scopes={"determinism": ("src/sim",)})
        assert config.families_for("src/sim/x.py") == {"determinism"}
        assert config.families_for("src/simulator/x.py") == frozenset()


class TestMinimalTomlFallback:
    """The 3.10 parser must agree with tomllib on the repro-lint table."""

    def test_parity_on_shipped_pyproject(self):
        tomllib = pytest.importorskip("tomllib")
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        mini = parse_minimal_toml(text)
        real = tomllib.loads(text)
        assert mini["tool"]["repro-lint"] == real["tool"]["repro-lint"]

    def test_scalars_and_arrays(self):
        document = parse_minimal_toml(
            """
            [tool.repro-lint]
            flag = true
            count = 3
            name = "x"  # trailing comment
            items = [
                "a",  # per-item comment
                "b",
            ]
            """
        )
        table = document["tool"]["repro-lint"]
        assert table == {
            "flag": True,
            "count": 3,
            "name": "x",
            "items": ["a", "b"],
        }

    def test_foreign_tables_skipped_not_parsed(self):
        # Constructs the subset does not support are fine outside repro-lint.
        document = parse_minimal_toml(
            """
            [tool.other]
            weird = { inline = "table" }

            [tool.repro-lint]
            paths = ["src"]
            """
        )
        assert document["tool"]["repro-lint"] == {"paths": ["src"]}

    def test_unsupported_value_in_repro_lint_table_rejected(self):
        with pytest.raises(ConfigurationError, match="unsupported value"):
            parse_minimal_toml("[tool.repro-lint]\nweird = 1.5\n")
