"""The analyzer's own dogfood gate: ``src/repro`` must lint clean.

This is the committed guarantee behind the CI lint job — every finding in
the tree is either fixed, pragma-suppressed with an in-place justification,
or grandfathered in ``lint-baseline.json`` with a written reason.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.baseline import Baseline, PLACEHOLDER_REASON
from repro.lint.config import load_config
from repro.lint.engine import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_repro_is_clean_against_committed_baseline():
    config = load_config(REPO_ROOT)
    report = run_lint(config)
    rendered = "\n".join(f.format_text() for f in report.findings)
    assert report.clean, f"repro lint found new violations:\n{rendered}"
    assert report.files_scanned > 50  # the whole tree was actually walked


def test_committed_baseline_has_no_placeholder_reasons():
    config = load_config(REPO_ROOT)
    path = REPO_ROOT / config.baseline
    baseline = Baseline.load(path)  # raises on empty reasons
    placeholders = [
        entry.fingerprint
        for entry in baseline.entries.values()
        if entry.reason == PLACEHOLDER_REASON
    ]
    assert placeholders == [], "fill in real reasons for baselined findings"


def test_committed_baseline_has_no_stale_entries():
    config = load_config(REPO_ROOT)
    report = run_lint(config)
    stale = [entry.fingerprint for entry in report.stale_baseline]
    assert stale == [], "remove fixed findings from lint-baseline.json"


def test_baseline_file_is_valid_versioned_json():
    config = load_config(REPO_ROOT)
    document = json.loads((REPO_ROOT / config.baseline).read_text())
    assert document["version"] == 1
    assert isinstance(document["entries"], list)
