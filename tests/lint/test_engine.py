"""Engine behaviour: scoping, file collection, dispatch, error handling."""

from __future__ import annotations

import pytest

from repro.lint.config import FAMILIES, LintConfig
from repro.lint.engine import LintEngine
from repro.lint.rules import ALL_RULES, rule_ids
from repro.sim.errors import ConfigurationError

VIOLATES_DET_AND_RES = "import time, os\na = time.time()\n\ndef f():\n    os._exit(1)\n"


def config_for(root, *, paths=("pkg",), scopes=None) -> LintConfig:
    return LintConfig(
        root=root,
        paths=paths,
        baseline="",
        scopes=scopes if scopes is not None else {f: paths for f in FAMILIES},
    )


class TestScoping:
    def test_family_scope_limits_rules(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(VIOLATES_DET_AND_RES)
        narrowed = config_for(tmp_path, scopes={"determinism": ("pkg",)})
        report = LintEngine(narrowed).run()
        assert [f.rule for f in report.findings] == ["DET001"]

    def test_out_of_scope_file_skipped_entirely(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(VIOLATES_DET_AND_RES)
        elsewhere = config_for(tmp_path, scopes={"determinism": ("otherdir",)})
        report = LintEngine(elsewhere).run()
        assert report.findings == []
        assert report.files_scanned == 1

    def test_directory_scope_covers_nested_files(self, tmp_path):
        nested = tmp_path / "pkg" / "deep"
        nested.mkdir(parents=True)
        (nested / "mod.py").write_text("import time\na = time.time()\n")
        report = LintEngine(config_for(tmp_path)).run()
        assert [f.rule for f in report.findings] == ["DET001"]
        assert report.findings[0].path == "pkg/deep/mod.py"


class TestFileCollection:
    def test_missing_path_is_config_error(self, tmp_path):
        config = config_for(tmp_path, paths=("does-not-exist",))
        with pytest.raises(ConfigurationError, match="does not exist"):
            LintEngine(config).run()

    def test_syntax_error_is_config_error(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "bad.py").write_text("def broken(:\n")
        with pytest.raises(ConfigurationError, match="cannot parse"):
            LintEngine(config_for(tmp_path)).run()

    def test_overlapping_paths_deduplicated(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text("import time\na = time.time()\n")
        config = config_for(tmp_path, paths=("pkg", "pkg/mod.py"))
        config.scopes = {f: ("pkg",) for f in FAMILIES}
        report = LintEngine(config).run()
        assert report.files_scanned == 1
        assert len(report.findings) == 1


class TestRegistry:
    def test_rule_ids_unique(self):
        ids = rule_ids()
        assert len(ids) == len(set(ids))

    def test_every_family_has_rules(self):
        families = {rule.family for rule in ALL_RULES}
        assert families == set(FAMILIES)

    def test_duplicate_rule_registration_rejected(self, tmp_path):
        rules = [ALL_RULES[0](), ALL_RULES[0]()]
        with pytest.raises(ConfigurationError, match="duplicate"):
            LintEngine(config_for(tmp_path), rules=rules)


class TestReportOrdering:
    def test_findings_sorted_by_path_then_line(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "b.py").write_text("import time\na = time.time()\n")
        (pkg / "a.py").write_text("import time\n\nb = time.time()\n")
        report = LintEngine(config_for(tmp_path)).run()
        locations = [(f.path, f.line) for f in report.findings]
        assert locations == sorted(locations)
