"""Positive/negative fixtures for the determinism (DET) rules."""

from __future__ import annotations


class TestWallClock:
    def test_time_time_flagged(self, harness):
        assert harness.rule_ids("import time\nstamp = time.time()\n") == ["DET001"]

    def test_from_import_alias_resolved(self, harness):
        source = """
            from time import perf_counter as pc
            elapsed = pc()
        """
        assert harness.rule_ids(source) == ["DET001"]

    def test_datetime_now_flagged(self, harness):
        source = """
            import datetime
            stamp = datetime.datetime.now()
        """
        assert harness.rule_ids(source) == ["DET001"]

    def test_time_sleep_not_flagged(self, harness):
        assert harness.rule_ids("import time\ntime.sleep(0.1)\n") == []

    def test_clock_cycle_not_flagged(self, harness):
        assert harness.rule_ids("def f(clock):\n    return clock.cycle\n") == []


class TestOsEntropy:
    def test_urandom_flagged(self, harness):
        assert harness.rule_ids("import os\nseed = os.urandom(8)\n") == ["DET002"]

    def test_uuid4_flagged(self, harness):
        assert harness.rule_ids("import uuid\nkey = uuid.uuid4()\n") == ["DET002"]

    def test_secrets_flagged(self, harness):
        source = """
            import secrets
            token = secrets.token_hex(8)
        """
        assert harness.rule_ids(source) == ["DET002"]

    def test_uuid5_not_flagged(self, harness):
        source = """
            import uuid
            key = uuid.uuid5(uuid.NAMESPACE_DNS, "repro")
        """
        assert harness.rule_ids(source) == []


class TestGlobalRandom:
    def test_import_random_flagged(self, harness):
        assert harness.rule_ids("import random\n") == ["DET003"]

    def test_from_random_import_flagged(self, harness):
        assert harness.rule_ids("from random import shuffle\n") == ["DET003"]

    def test_module_draw_flagged(self, harness):
        # The import line and the draw both fire.
        assert harness.rule_ids("import random\nx = random.random()\n") == [
            "DET003",
            "DET003",
        ]

    def test_own_rng_module_not_flagged(self, harness):
        source = """
            from repro.sim.rng import RandomStreams
            streams = RandomStreams(seed=7)
        """
        assert harness.rule_ids(source) == []


class TestGlobalNumpyRandom:
    def test_global_state_draw_flagged(self, harness):
        source = """
            import numpy as np
            x = np.random.rand(4)
        """
        assert harness.rule_ids(source) == ["DET004"]

    def test_unseeded_default_rng_flagged(self, harness):
        source = """
            import numpy as np
            rng = np.random.default_rng()
        """
        assert harness.rule_ids(source) == ["DET004"]

    def test_seeded_default_rng_ok(self, harness):
        source = """
            import numpy as np
            rng = np.random.default_rng(1234)
        """
        assert harness.rule_ids(source) == []

    def test_seeded_bit_generator_ok(self, harness):
        source = """
            import numpy as np
            rng = np.random.Generator(np.random.PCG64(99))
        """
        assert harness.rule_ids(source) == []


class TestBuiltinHash:
    def test_builtin_hash_flagged(self, harness):
        assert harness.rule_ids("key = hash(('a', 1))\n") == ["DET005"]

    def test_imported_hash_shadows_builtin(self, harness):
        source = """
            from siphash import hash
            key = hash(b"data")
        """
        assert harness.rule_ids(source) == []

    def test_blake2b_not_flagged(self, harness):
        source = """
            import hashlib
            key = hashlib.blake2b(b"data", digest_size=8).hexdigest()
        """
        assert harness.rule_ids(source) == []
