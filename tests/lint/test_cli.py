"""CLI surface: exit codes, JSON schema, --write-baseline, repro integration."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main as repro_main
from repro.lint.baseline import PLACEHOLDER_REASON
from repro.lint.cli import main as lint_main
from repro.lint.report import JSON_SCHEMA_VERSION
from repro.lint.rules import rule_ids

PYPROJECT = """
[tool.repro-lint]
paths = ["pkg"]
baseline = "lint-baseline.json"

[tool.repro-lint.scopes]
determinism = ["pkg"]
ordering = ["pkg"]
hotpath = ["pkg"]
contracts = ["pkg"]
resources = ["pkg"]
"""

CLEAN = "VALUE = 1\n"
DIRTY = "import time\nstamp = time.time()\n"


def write_project(tmp_path: Path, source: str) -> Path:
    (tmp_path / "pyproject.toml").write_text(PYPROJECT)
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(source)
    return tmp_path


class TestExitCodes:
    def test_clean_run_exits_zero(self, tmp_path, capsys):
        root = write_project(tmp_path, CLEAN)
        assert lint_main(["--root", str(root)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = write_project(tmp_path, DIRTY)
        assert lint_main(["--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "pkg/mod.py:2" in out

    def test_config_error_exits_two(self, tmp_path, capsys):
        root = write_project(tmp_path, CLEAN)
        assert lint_main(["--root", str(root), "no-such-path"]) == 2
        assert "error" in capsys.readouterr().err

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        root = write_project(tmp_path, CLEAN)
        (root / "lint-baseline.json").write_text("{broken")
        assert lint_main(["--root", str(root)]) == 2


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        root = write_project(tmp_path, DIRTY)
        assert lint_main(["--root", str(root), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["clean"] is False
        assert document["files_scanned"] == 1
        assert document["summary"]["findings"] == 1
        (finding,) = document["findings"]
        assert set(finding) == {
            "rule", "severity", "path", "line", "column",
            "message", "snippet", "fingerprint",
        }
        assert finding["rule"] == "DET001"
        assert finding["path"] == "pkg/mod.py"

    def test_output_flag_writes_artifact(self, tmp_path, capsys):
        root = write_project(tmp_path, DIRTY)
        artifact = tmp_path / "report.json"
        code = lint_main(["--root", str(root), "--output", str(artifact)])
        assert code == 1
        capsys.readouterr()  # text on stdout, JSON in the artifact
        document = json.loads(artifact.read_text())
        assert document["summary"]["findings"] == 1


class TestWriteBaseline:
    def test_write_then_rerun_is_clean(self, tmp_path, capsys):
        root = write_project(tmp_path, DIRTY)
        assert lint_main(["--root", str(root), "--write-baseline"]) == 0
        document = json.loads((root / "lint-baseline.json").read_text())
        assert [e["rule"] for e in document["entries"]] == ["DET001"]
        assert document["entries"][0]["reason"] == PLACEHOLDER_REASON
        capsys.readouterr()
        # Placeholder reasons are non-empty, so the baseline loads; the rerun
        # passes with the finding grandfathered.
        assert lint_main(["--root", str(root)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_restores_failure(self, tmp_path, capsys):
        root = write_project(tmp_path, DIRTY)
        assert lint_main(["--root", str(root), "--write-baseline"]) == 0
        assert lint_main(["--root", str(root), "--no-baseline"]) == 1


class TestListRules:
    def test_lists_every_rule_id(self, tmp_path, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_ids():
            assert rule_id in out


class TestReproIntegration:
    def test_repro_lint_subcommand(self, tmp_path, capsys):
        root = write_project(tmp_path, DIRTY)
        assert repro_main(["lint", "--root", str(root)]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_repro_lint_clean(self, tmp_path, capsys):
        root = write_project(tmp_path, CLEAN)
        assert repro_main(["lint", "--root", str(root)]) == 0
