"""Suppression-pragma semantics: line, line-above, file, family prefix."""

from __future__ import annotations

from repro.lint.pragmas import scan_pragmas

VIOLATION = "import time\nstamp = time.time(){tail}\n"


class TestLinePragmas:
    def test_same_line_pragma_suppresses(self, harness):
        source = VIOLATION.format(tail="  # repro-lint: allow[DET001] telemetry")
        report = harness.lint(source)
        assert report.findings == []
        assert report.suppressed == 1

    def test_comment_line_above_suppresses(self, harness):
        source = (
            "import time\n"
            "# repro-lint: allow[DET001] — host-side timing only\n"
            "stamp = time.time()\n"
        )
        report = harness.lint(source)
        assert report.findings == []
        assert report.suppressed == 1

    def test_unrelated_rule_id_does_not_suppress(self, harness):
        source = VIOLATION.format(tail="  # repro-lint: allow[RES003]")
        report = harness.lint(source)
        assert [f.rule for f in report.findings] == ["DET001"]
        assert report.suppressed == 0

    def test_multiple_rules_in_one_pragma(self, harness):
        source = (
            "import json\n"
            "def f(d):\n"
            "    return [json.dumps(x) for x in {d}]"
            "  # repro-lint: allow[ORD001,ORD002]\n"
        )
        report = harness.lint(source)
        assert report.findings == []
        assert report.suppressed == 2

    def test_family_prefix_suppresses_whole_family(self, harness):
        source = VIOLATION.format(tail="  # repro-lint: allow[DET]")
        assert harness.lint(source).findings == []

    def test_pragma_two_lines_above_does_not_suppress(self, harness):
        source = (
            "# repro-lint: allow[DET001]\n"
            "import time\n"
            "stamp = time.time()\n"
        )
        assert [f.rule for f in harness.lint(source).findings] == ["DET001"]

    def test_pragma_in_string_literal_ignored(self, harness):
        source = (
            'DOC = "# repro-lint: allow[DET001]"\n'
            "import time\n"
            "stamp = time.time()\n"
        )
        assert [f.rule for f in harness.lint(source).findings] == ["DET001"]


class TestFilePragmas:
    def test_allow_file_suppresses_everywhere(self, harness):
        source = (
            "# repro-lint: allow-file[DET001] — wall-clock telemetry module\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n"
        )
        report = harness.lint(source)
        assert report.findings == []
        assert report.suppressed == 2

    def test_allow_file_leaves_other_rules_failing(self, harness):
        source = (
            "# repro-lint: allow-file[DET001]\n"
            "import time, os\n"
            "a = time.time()\n"
            "b = os.urandom(4)\n"
        )
        assert [f.rule for f in harness.lint(source).findings] == ["DET002"]


class TestScanPragmas:
    def test_comment_only_lines_identified(self):
        index = scan_pragmas(
            "x = 1\n# repro-lint: allow[DET001]\ny = 2  # repro-lint: allow[RES003]\n"
        )
        assert index.comment_only_lines == frozenset({2})
        assert index.line_allows[2] == frozenset({"DET001"})
        assert index.line_allows[3] == frozenset({"RES003"})

    def test_empty_bracket_ignored(self):
        index = scan_pragmas("# repro-lint: allow[]\n")
        assert index.line_allows == {}
        assert index.file_allows == frozenset()
