"""Shared fixtures for the lint test suite."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.config import FAMILIES, LintConfig
from repro.lint.engine import LintEngine, LintReport


class LintHarness:
    """Writes synthetic modules into a tmp root and lints them."""

    def __init__(self, root: Path) -> None:
        self.root = root

    def lint(
        self,
        source: str,
        *,
        filename: str = "mod.py",
        value_class: bool = False,
        os_exit_ok: bool = False,
        hot_methods: tuple[str, ...] | None = None,
        baseline=None,
    ) -> LintReport:
        path = self.root / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        config = LintConfig(
            root=self.root,
            paths=(filename,),
            baseline="",
            scopes={family: (filename,) for family in FAMILIES},
            value_class_modules=(filename,) if value_class else (),
            os_exit_modules=(filename,) if os_exit_ok else (),
        )
        if hot_methods is not None:
            config.hot_methods = hot_methods
        return LintEngine(config).run(baseline)

    def rule_ids(self, source: str, **kwargs) -> list[str]:
        """The rule ids of the failing findings, in report order."""
        return [finding.rule for finding in self.lint(source, **kwargs).findings]


@pytest.fixture
def harness(tmp_path: Path) -> LintHarness:
    return LintHarness(tmp_path)
