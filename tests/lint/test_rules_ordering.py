"""Positive/negative fixtures for the ordering-stability (ORD) rules."""

from __future__ import annotations


class TestJsonSortKeys:
    def test_plain_dumps_flagged(self, harness):
        source = """
            import json
            def encode(record):
                return json.dumps(record)
        """
        assert harness.rule_ids(source) == ["ORD001"]

    def test_sort_keys_true_ok(self, harness):
        source = """
            import json
            def encode(record):
                return json.dumps(record, sort_keys=True)
        """
        assert harness.rule_ids(source) == []

    def test_sort_keys_false_flagged(self, harness):
        source = """
            import json
            def encode(record):
                return json.dumps(record, sort_keys=False)
        """
        assert harness.rule_ids(source) == ["ORD001"]

    def test_canonical_sorted_dict_comprehension_ok(self, harness):
        # The store's canonical-encoder idiom must stay legal.
        source = """
            import json
            def encode(record):
                return json.dumps({key: record[key] for key in sorted(record)})
        """
        assert harness.rule_ids(source) == []

    def test_dict_of_sorted_items_ok(self, harness):
        source = """
            import json
            def encode(record):
                return json.dumps(dict(sorted(record.items())))
        """
        assert harness.rule_ids(source) == []


class TestUnorderedIteration:
    def test_for_over_set_literal_flagged(self, harness):
        source = """
            def walk():
                for item in {"b", "a"}:
                    yield item
        """
        assert harness.rule_ids(source) == ["ORD002"]

    def test_for_over_set_comprehension_flagged(self, harness):
        source = """
            def ids(jobs):
                for job_id in {job.job_id for job in jobs}:
                    yield job_id
        """
        assert harness.rule_ids(source) == ["ORD002"]

    def test_for_over_set_call_flagged(self, harness):
        source = """
            def walk(items):
                for item in set(items):
                    yield item
        """
        assert harness.rule_ids(source) == ["ORD002"]

    def test_comprehension_over_union_flagged(self, harness):
        source = """
            def merged(a, b):
                return [key for key in a.union(b)]
        """
        assert harness.rule_ids(source) == ["ORD002"]

    def test_sorted_set_ok(self, harness):
        source = """
            def walk(items):
                for item in sorted(set(items)):
                    yield item
        """
        assert harness.rule_ids(source) == []

    def test_list_iteration_ok(self, harness):
        source = """
            def walk(items):
                for item in list(items):
                    yield item
        """
        assert harness.rule_ids(source) == []


class TestFilesystemOrder:
    def test_listdir_iteration_flagged(self, harness):
        source = """
            import os
            def scan(path):
                for name in os.listdir(path):
                    yield name
        """
        assert harness.rule_ids(source) == ["ORD003"]

    def test_pathlib_glob_iteration_flagged(self, harness):
        source = """
            def scan(root):
                return [p for p in root.rglob("*.py")]
        """
        assert harness.rule_ids(source) == ["ORD003"]

    def test_sorted_glob_ok(self, harness):
        source = """
            def scan(root):
                return [p for p in sorted(root.rglob("*.py"))]
        """
        assert harness.rule_ids(source) == []
