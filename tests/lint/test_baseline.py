"""Baseline semantics: grandfathering, reasons, staleness, fingerprints."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.findings import Finding, Severity
from repro.sim.errors import ConfigurationError

SOURCE = "import time\nstamp = time.time()\n"


def baseline_for(harness, source: str) -> Baseline:
    findings = harness.lint(source).findings
    assert findings, "fixture must produce findings to grandfather"
    entries = {
        f.fingerprint: BaselineEntry(
            fingerprint=f.fingerprint,
            rule=f.rule,
            path=f.path,
            snippet=f.snippet,
            reason="grandfathered in tests",
        )
        for f in findings
    }
    return Baseline(entries=entries)


class TestGrandfathering:
    def test_baselined_finding_does_not_fail(self, harness):
        baseline = baseline_for(harness, SOURCE)
        report = harness.lint(SOURCE, baseline=baseline)
        assert report.findings == []
        assert [f.rule for f in report.baselined] == ["DET001"]
        assert report.clean and report.exit_code == 0

    def test_new_finding_still_fails(self, harness):
        baseline = baseline_for(harness, SOURCE)
        grown = SOURCE + "key = hash(stamp)\n"
        report = harness.lint(grown, baseline=baseline)
        assert [f.rule for f in report.findings] == ["DET005"]
        assert [f.rule for f in report.baselined] == ["DET001"]
        assert report.exit_code == 1

    def test_fixed_finding_reported_stale(self, harness):
        baseline = baseline_for(harness, SOURCE)
        report = harness.lint("stamp = 0\n", baseline=baseline)
        assert report.findings == []
        assert len(report.stale_baseline) == 1
        assert report.stale_baseline[0].rule == "DET001"

    def test_fingerprint_survives_line_moves(self, harness):
        baseline = baseline_for(harness, SOURCE)
        shifted = "import time\n\n\nUNRELATED = 1\nstamp = time.time()\n"
        report = harness.lint(shifted, baseline=baseline)
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_duplicate_identical_lines_fingerprint_distinctly(self, harness):
        twice = "import time\na = time.time()\na = time.time()\n"
        findings = harness.lint(twice).findings
        fingerprints = {f.fingerprint for f in findings}
        assert len(findings) == 2 and len(fingerprints) == 2


class TestBaselineFile:
    def test_round_trip(self, tmp_path):
        entry = BaselineEntry(
            fingerprint="abc123", rule="DET001", path="x.py",
            snippet="t = time.time()", reason="legacy telemetry",
        )
        path = tmp_path / "baseline.json"
        Baseline(entries={entry.fingerprint: entry}).save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == {"abc123": entry}

    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "absent.json").entries == {}

    def test_entry_without_reason_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "entries": [{
                "fingerprint": "abc", "rule": "DET001", "path": "x.py",
                "snippet": "", "reason": "   ",
            }],
        }))
        with pytest.raises(ConfigurationError, match="no reason"):
            Baseline.load(path)

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ConfigurationError, match="version"):
            Baseline.load(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError, match="invalid baseline"):
            Baseline.load(path)


class TestFindingModel:
    def test_fingerprint_ignores_line_number(self):
        a = Finding("DET001", Severity.ERROR, "x.py", 10, 0, "m", snippet="s")
        b = Finding("DET001", Severity.ERROR, "x.py", 99, 4, "m", snippet="s")
        assert a.fingerprint == b.fingerprint

    def test_fingerprint_depends_on_occurrence(self):
        a = Finding("DET001", Severity.ERROR, "x.py", 1, 0, "m", snippet="s", occurrence=0)
        b = Finding("DET001", Severity.ERROR, "x.py", 2, 0, "m", snippet="s", occurrence=1)
        assert a.fingerprint != b.fingerprint

    def test_format_text_is_one_based_column(self):
        finding = Finding("DET001", Severity.ERROR, "x.py", 3, 0, "boom")
        assert finding.format_text().startswith("x.py:3:1: DET001 [error] boom")
