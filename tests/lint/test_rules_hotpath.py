"""Positive/negative fixtures for the hot-path discipline (HOT) rules."""

from __future__ import annotations

def hot(method: str, body: str) -> str:
    """A class with one hot method whose body is ``body``."""
    lines = ["class Component:", f"    def {method}(self):"]
    lines.extend(f"        {line}" for line in body.splitlines())
    return "\n".join(lines) + "\n"


class TestAllocations:
    def test_list_display_flagged(self, harness):
        assert harness.rule_ids(hot("tick", "pending = []")) == ["HOT001"]

    def test_dict_display_flagged(self, harness):
        assert harness.rule_ids(hot("post_tick", "state = {}")) == ["HOT001"]

    def test_comprehension_flagged(self, harness):
        source = hot("tick", "ids = [m.id for m in self.masters]")
        assert harness.rule_ids(source) == ["HOT001"]

    def test_fast_forward_body_checked(self, harness):
        # next_event rides along so CON002 (its own rule) stays quiet here.
        source = hot("fast_forward", "ids = [m.id for m in self.masters]")
        source += "    def next_event(self):\n        return None\n"
        assert harness.rule_ids(source) == ["HOT001"]

    def test_generator_expression_flagged(self, harness):
        source = hot("next_event", "total = sum(c.value for c in self.counters)")
        assert harness.rule_ids(source) == ["HOT001"]

    def test_plain_arithmetic_ok(self, harness):
        assert harness.rule_ids(hot("tick", "self.cycle = self.cycle + 1")) == []

    def test_cold_method_not_checked(self, harness):
        assert harness.rule_ids(hot("reset", "pending = []")) == []

    def test_module_level_function_not_checked(self, harness):
        source = """
            def tick():
                pending = []
                return pending
        """
        assert harness.rule_ids(source) == []


class TestFormatting:
    def test_fstring_flagged(self, harness):
        source = hot("tick", 'label = f"cycle {self.cycle}"')
        assert harness.rule_ids(source) == ["HOT002"]

    def test_str_format_flagged(self, harness):
        source = hot("tick", 'label = "cycle {}".format(self.cycle)')
        assert harness.rule_ids(source) == ["HOT002"]


class TestFunctionObjects:
    def test_lambda_flagged(self, harness):
        source = hot("tick", "key = lambda item: item.cycle")
        assert harness.rule_ids(source) == ["HOT003"]

    def test_nested_def_flagged(self, harness):
        body = "def helper():\n    return 1\nself.x = helper()"
        assert harness.rule_ids(hot("tick", body)) == ["HOT003"]

    def test_nested_body_not_double_reported(self, harness):
        # The allocation inside the nested def is not separately reported —
        # the nested def itself is the finding.
        body = "def helper():\n    return []\nself.x = helper"
        assert harness.rule_ids(hot("tick", body)) == ["HOT003"]


class TestAttributeChains:
    def test_repeated_chain_flagged_once(self, harness):
        body = "self.bus.arbiter.step()\nself.bus.arbiter.account()"
        assert harness.rule_ids(hot("tick", body)) == ["HOT004"]

    def test_prefix_of_longer_chain_not_double_counted(self, harness):
        # self.a.b.c twice must yield ONE finding (for self.a.b.c), not a
        # second one for the self.a.b prefix.
        body = "self.a.b.c()\nself.a.b.c()"
        assert harness.rule_ids(hot("tick", body)) == ["HOT004"]

    def test_single_lookup_ok(self, harness):
        assert harness.rule_ids(hot("tick", "self.bus.arbiter.step()")) == []

    def test_single_hop_repeats_ok(self, harness):
        body = "self.cycle = self.cycle + self.cycle"
        assert harness.rule_ids(hot("tick", body)) == []


class TestConfigurableHotMethods:
    def test_custom_hot_method_names(self, harness):
        source = """
            class Component:
                def service(self):
                    pending = []
                    return pending
        """
        assert harness.rule_ids(source) == []
        assert harness.rule_ids(source, hot_methods=("service",)) == ["HOT001"]
