"""Tests for the transaction latency table."""

import pytest

from repro.bus.latency import LatencyTable, TransactionClass
from repro.sim.config import BusTimings


@pytest.fixture
def table(paper_timings):
    return LatencyTable(paper_timings)


def test_paper_durations(table):
    assert table.duration(TransactionClass.L2_HIT_READ) == 5
    assert table.duration(TransactionClass.L2_HIT_WRITE) == 6
    assert table.duration(TransactionClass.L2_MISS_CLEAN) == 28
    assert table.duration(TransactionClass.L2_MISS_DIRTY) == 56
    assert table.duration(TransactionClass.ATOMIC) == 56


def test_max_latency_is_56_for_paper_platform(table):
    assert table.max_latency == 56
    assert table.min_latency == 5


def test_bus_overhead_applies_to_every_class():
    table = LatencyTable(BusTimings(bus_overhead=2))
    assert table.duration(TransactionClass.L2_HIT_READ) == 7
    assert table.duration(TransactionClass.L2_MISS_CLEAN) == 30
    assert table.duration(TransactionClass.L2_MISS_DIRTY) == 58


def test_as_dict_lists_every_class(table):
    durations = table.as_dict()
    assert set(durations) == {kind.value for kind in TransactionClass}
    assert durations["atomic"] == 56
