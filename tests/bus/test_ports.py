"""Tests for the bus port helpers."""

import pytest

from repro.bus.ports import CallbackMaster, FixedLatencySlave
from repro.bus.transaction import BusRequest


def test_callback_master_forwards_notifications():
    events = []
    master = CallbackMaster(
        on_grant=lambda req, cycle: events.append(("grant", cycle)),
        on_complete=lambda req, cycle: events.append(("complete", cycle)),
    )
    request = BusRequest(master_id=0, address=0)
    master.on_grant(request, 3)
    master.on_complete(request, 9)
    assert events == [("grant", 3), ("complete", 9)]


def test_callback_master_tolerates_missing_callbacks():
    master = CallbackMaster()
    request = BusRequest(master_id=0, address=0)
    master.on_grant(request, 1)
    master.on_complete(request, 2)


def test_fixed_latency_slave_returns_constant_duration():
    slave = FixedLatencySlave(latency=28)
    request = BusRequest(master_id=2, address=0x40)
    assert slave.resolve(request, cycle=0) == 28
    assert slave.resolve(request, cycle=10) == 28
    assert slave.requests_served == 2
    assert request.annotations["slave"] == "fixed"


def test_fixed_latency_slave_rejects_nonpositive_latency():
    with pytest.raises(ValueError):
        FixedLatencySlave(latency=0)
