"""Tests for the non-split shared bus."""

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.ports import CallbackMaster, FixedLatencySlave
from repro.bus.transaction import BusRequest
from repro.sim.errors import ProtocolError
from repro.sim.kernel import Kernel


def make_bus(num_masters=2, latency=4, max_latency=56):
    kernel = Kernel()
    bus = SharedBus(
        "bus",
        num_masters=num_masters,
        arbiter=RoundRobinArbiter(num_masters),
        slave=FixedLatencySlave(latency),
        max_latency=max_latency,
    )
    kernel.register(bus)
    return kernel, bus


def test_single_request_is_granted_and_completed():
    kernel, bus = make_bus(latency=4)
    completions = []
    bus.connect_master(0, CallbackMaster(on_complete=lambda req, cyc: completions.append(cyc)))
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    kernel.step(1)
    assert bus.busy
    assert bus.holder == 0
    kernel.step(3)
    assert bus.busy  # still in flight during its last hold cycle
    kernel.step(1)
    assert not bus.busy
    assert completions == [4]


def test_request_records_grant_and_completion_cycles():
    kernel, bus = make_bus(latency=3)
    request = BusRequest(master_id=0, address=0, issue_cycle=0)
    bus.submit(request)
    kernel.step(5)
    assert request.grant_cycle == 0
    assert request.duration == 3
    assert request.complete_cycle == 3
    assert request.total_latency == 3


def test_non_split_bus_serialises_competing_masters():
    kernel, bus = make_bus(num_masters=2, latency=5)
    first = BusRequest(master_id=0, address=0, issue_cycle=0)
    second = BusRequest(master_id=1, address=0, issue_cycle=0)
    bus.submit(first)
    bus.submit(second)
    kernel.step(12)
    assert first.complete_cycle == 5
    # The second master is granted only once the first transaction releases
    # the bus (non-split semantics).
    assert second.grant_cycle == 5
    assert second.complete_cycle == 10


def test_same_master_cannot_have_two_outstanding_requests():
    kernel, bus = make_bus()
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    with pytest.raises(ProtocolError):
        bus.submit(BusRequest(master_id=0, address=4, issue_cycle=0))


def test_unknown_master_rejected():
    kernel, bus = make_bus(num_masters=2)
    with pytest.raises(ProtocolError):
        bus.submit(BusRequest(master_id=5, address=0))


def test_slave_duration_outside_bounds_rejected():
    kernel = Kernel()
    bus = SharedBus(
        "bus",
        num_masters=1,
        arbiter=RoundRobinArbiter(1),
        slave=FixedLatencySlave(100),
        max_latency=56,
    )
    kernel.register(bus)
    bus.submit(BusRequest(master_id=0, address=0))
    with pytest.raises(ProtocolError):
        kernel.step()


def test_arbiter_size_mismatch_rejected():
    with pytest.raises(ProtocolError):
        SharedBus(
            "bus",
            num_masters=4,
            arbiter=RoundRobinArbiter(2),
            slave=FixedLatencySlave(4),
        )


def test_bandwidth_accounting_per_master():
    kernel, bus = make_bus(num_masters=2, latency=4)
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    bus.submit(BusRequest(master_id=1, address=0, issue_cycle=0))
    kernel.step(10)
    assert bus.grants(0) == 1
    assert bus.grants(1) == 1
    assert bus.cycles_granted(0) == 4
    assert bus.cycles_granted(1) == 4
    assert bus.bandwidth_shares() == [0.5, 0.5]


def test_utilization_counts_busy_cycles():
    kernel, bus = make_bus(latency=4)
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    kernel.step(8)
    assert bus.utilization() == pytest.approx(0.5)


def test_back_to_back_grants_have_no_idle_gap():
    kernel, bus = make_bus(num_masters=2, latency=5)
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    bus.submit(BusRequest(master_id=1, address=0, issue_cycle=0))
    kernel.step(10)
    assert bus.stats.counter("cycles_busy").value == 10


def test_reset_clears_state_and_stats():
    kernel, bus = make_bus(latency=4)
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    kernel.step(2)
    bus.reset()
    assert not bus.busy
    assert bus.pending_masters == []
    assert bus.stats.counter("cycles_total").value == 0
