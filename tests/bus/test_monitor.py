"""Tests for the passive bus monitor."""

import pytest

from repro.arbiters.round_robin import RoundRobinArbiter
from repro.bus.bus import SharedBus
from repro.bus.monitor import BusMonitor
from repro.bus.ports import FixedLatencySlave
from repro.bus.transaction import BusRequest
from repro.sim.kernel import Kernel


def make_monitored_bus(window=10, latency=4):
    kernel = Kernel()
    bus = SharedBus(
        "bus",
        num_masters=2,
        arbiter=RoundRobinArbiter(2),
        slave=FixedLatencySlave(latency),
        max_latency=56,
    )
    monitor = BusMonitor("monitor", bus, window_cycles=window)
    kernel.register(bus)
    kernel.register(monitor)
    return kernel, bus, monitor


def test_window_length_must_be_positive():
    kernel, bus, _ = make_monitored_bus()
    with pytest.raises(ValueError):
        BusMonitor("bad", bus, window_cycles=0)


def test_idle_bus_produces_idle_windows():
    kernel, bus, monitor = make_monitored_bus(window=5)
    kernel.step(10)
    assert len(monitor.windows) == 2
    assert monitor.windows[0].idle_cycles == 5
    assert monitor.windows[0].utilization == 0.0
    assert monitor.overall_shares() == [0.0, 0.0]


def test_busy_cycles_attributed_to_holder():
    kernel, bus, monitor = make_monitored_bus(window=10, latency=4)
    bus.submit(BusRequest(master_id=1, address=0, issue_cycle=0))
    kernel.step(10)
    window = monitor.windows[0]
    assert window.busy_cycles_per_master == (0, 4)
    assert window.shares == (0.0, 1.0)
    assert window.utilization == pytest.approx(0.4)
    assert monitor.overall_shares() == [0.0, 1.0]


def test_windows_cover_consecutive_ranges():
    kernel, bus, monitor = make_monitored_bus(window=7)
    kernel.step(21)
    starts = [w.start_cycle for w in monitor.windows]
    ends = [w.end_cycle for w in monitor.windows]
    assert starts == [0, 7, 14]
    assert ends == [7, 14, 21]
    assert all(w.length == 7 for w in monitor.windows)


def test_reset_clears_windows_and_totals():
    kernel, bus, monitor = make_monitored_bus(window=5)
    bus.submit(BusRequest(master_id=0, address=0, issue_cycle=0))
    kernel.step(10)
    monitor.reset()
    assert monitor.windows == []
    assert monitor.total_busy_per_master == [0, 0]
    assert monitor.total_cycles_observed == 0
