"""Tests for bus request descriptors."""

from repro.bus.transaction import AccessType, BusRequest


def test_access_type_predicates():
    assert AccessType.WRITE.is_write
    assert not AccessType.READ.is_write
    assert AccessType.ATOMIC.is_atomic
    assert not AccessType.WRITE.is_atomic


def test_request_ids_are_unique_and_increasing():
    first = BusRequest(master_id=0, address=0)
    second = BusRequest(master_id=0, address=0)
    assert second.request_id > first.request_id


def test_lifecycle_flags_and_latencies():
    request = BusRequest(master_id=1, address=0x100, issue_cycle=10)
    assert not request.granted
    assert not request.completed
    assert request.wait_cycles == 0
    assert request.total_latency == 0

    request.grant_cycle = 15
    request.duration = 6
    assert request.granted
    assert request.wait_cycles == 5

    request.complete_cycle = 21
    assert request.completed
    assert request.total_latency == 11


def test_annotate_chains_and_merges():
    request = BusRequest(master_id=0, address=0)
    same = request.annotate(transaction_class="l2_hit_read").annotate(extra=1)
    assert same is request
    assert request.annotations == {"transaction_class": "l2_hit_read", "extra": 1}


def test_default_access_is_read():
    assert BusRequest(master_id=0, address=0).access is AccessType.READ
