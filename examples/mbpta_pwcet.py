#!/usr/bin/env python3
"""Derive a probabilistic WCET (pWCET) estimate with MBPTA.

Collects execution times of an EEMBC-like benchmark in the WCET-estimation
scenario of the paper (Table I contenders, task under analysis starting with
zero budget), checks the i.i.d. hypotheses, fits the Gumbel tail and prints
the pWCET curve.  It then runs a few operation-mode (maximum contention) runs
and verifies the bound covers them — the soundness argument of Section III-B.

Run with::

    python examples/mbpta_pwcet.py canrdr --config CBA --runs 50
"""

from __future__ import annotations

import argparse

from repro import run_mbpta_experiment
from repro.analysis.reporting import format_table
from repro.workloads.eembc import available_benchmarks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="canrdr",
                        choices=available_benchmarks())
    parser.add_argument("--config", default="CBA", choices=["RP", "CBA", "H-CBA"],
                        help="bus configuration (default: CBA)")
    parser.add_argument("--runs", type=int, default=40,
                        help="analysis-time measurement runs (paper: 1000)")
    parser.add_argument("--operation-runs", type=int, default=8)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="workload length scale factor")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    result = run_mbpta_experiment(
        benchmark=args.benchmark,
        configuration=args.config,
        num_runs=args.runs,
        operation_runs=args.operation_runs,
        seed=args.seed,
        access_scale=args.scale,
    )

    print(f"MBPTA campaign: {args.benchmark} on the {args.config} bus, "
          f"{args.runs} analysis runs")
    print()
    print(format_table(
        ["i.i.d. test", "statistic", "p-value", "passed"],
        [[t.name, t.statistic, t.p_value, t.passed] for t in result.mbpta.iid_tests],
    ))
    print()
    fit = result.mbpta.evt.fit
    print(f"Gumbel tail: location={fit.location:.1f} cycles, scale={fit.scale:.1f}, "
          f"fit method={fit.method}, goodness-of-fit passed={result.mbpta.evt.acceptable}")
    print()
    print(format_table(
        ["exceedance probability", "pWCET (cycles)"],
        [[f"{p:g}", bound] for p, bound in result.mbpta.pwcet.points()],
        float_format="{:.0f}",
    ))
    print()
    print(f"observed maximum, analysis mode : {result.mbpta.observed_max:.0f} cycles")
    print(f"observed maximum, operation mode: {max(result.operation_samples):.0f} cycles")
    verdict = "covers" if result.bound_dominates_operation else "DOES NOT cover"
    print(f"pWCET @ 1e-12 = {result.pwcet_bound:.0f} cycles — {verdict} every operation-mode run")


if __name__ == "__main__":
    main()
