#!/usr/bin/env python3
"""Explore heterogeneous bandwidth allocation with H-CBA.

Section III-A of the paper describes two ways of giving one core more
bandwidth than the others: redistributing the per-cycle budget replenishment
(the evaluated H-CBA, e.g. 1/2 for the favoured core and 1/6 for each other
core) or letting the favoured core's budget cap grow above MaxL.  This
example sweeps both variants on a short-request task running against three
greedy contenders and prints, for each design point, the favoured core's
slowdown, the bus share it obtained and the contenders' throughput.

Run with::

    python examples/hcba_bandwidth_shares.py --fractions 0.25 0.5 0.75
"""

from __future__ import annotations

import argparse

from repro import run_hcba_sweep
from repro.analysis.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fractions", type=float, nargs="*", default=[0.25, 0.4, 0.5, 0.75],
                        help="favoured-core bandwidth fractions to sweep")
    parser.add_argument("--cap-multipliers", type=int, nargs="*", default=[2, 4],
                        help="budget-cap growth factors to sweep")
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    result = run_hcba_sweep(
        fractions=tuple(args.fractions),
        cap_multipliers=tuple(args.cap_multipliers),
        num_runs=args.runs,
        access_scale=args.scale,
        seed=args.seed,
    )

    print("H-CBA design-space sweep (short-request task vs three greedy contenders)")
    print(f"baseline isolation execution time: {result.baseline_isolation_cycles:.0f} cycles")
    print()
    rows = [
        [
            point.label,
            point.favoured_fraction,
            point.tua_slowdown,
            point.tua_bandwidth_share,
            point.contender_completed_requests,
        ]
        for point in result.points
    ]
    print(format_table(
        ["configuration", "favoured fraction", "TuA slowdown",
         "TuA bus share", "contender requests"],
        rows,
    ))
    print()
    print("Larger favoured fractions trade contender throughput for TuA latency;")
    print("budget-cap growth enables back-to-back grants at the cost of temporal")
    print("starvation windows for the other cores (Section III-A of the paper).")


if __name__ == "__main__":
    main()
