#!/usr/bin/env python3
"""Quickstart: compare a task's execution time with and without CBA.

Builds the paper's 4-core platform (random-permutations bus, partitioned L2,
28-cycle memory), runs the EEMBC-like ``matrix`` workload in isolation and
against three worst-case contenders, and prints the slowdowns for the
baseline bus (RP), the credit-based bus (CBA) and the heterogeneous variant
(H-CBA, 50% of the bandwidth for the task under analysis).

Run with::

    python examples/quickstart.py [benchmark] [--runs N]
"""

from __future__ import annotations

import argparse

from repro import (
    cba_config,
    eembc_workload,
    hcba_config,
    rp_config,
    run_isolation,
    run_max_contention,
)
from repro.analysis.reporting import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="matrix",
                        help="EEMBC-like workload name (default: matrix)")
    parser.add_argument("--runs", type=int, default=2,
                        help="randomised runs to average (default: 2)")
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    workload = eembc_workload(args.benchmark)
    configs = {"RP": rp_config(), "CBA": cba_config(), "H-CBA": hcba_config(favoured_core=0)}

    def average(scenario, config):
        cycles = [
            scenario(workload, config, seed=args.seed, run_index=run).tua_cycles
            for run in range(args.runs)
        ]
        return sum(cycles) / len(cycles)

    baseline = average(run_isolation, configs["RP"])
    rows = []
    for label, config in configs.items():
        iso = average(run_isolation, config)
        con = average(run_max_contention, config)
        rows.append([label, iso, con, iso / baseline, con / baseline])

    print(f"benchmark: {args.benchmark}  (averaged over {args.runs} randomised runs)")
    print()
    print(
        format_table(
            ["bus", "isolation (cycles)", "contention (cycles)",
             "isolation slowdown", "contention slowdown"],
            rows,
        )
    )
    print()
    print("Normalisation baseline: RP in isolation (as in Figure 1 of the paper).")


if __name__ == "__main__":
    main()
