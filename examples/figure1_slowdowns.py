#!/usr/bin/env python3
"""Regenerate Figure 1: EEMBC slowdowns under RP, CBA and H-CBA.

Runs the four EEMBC-like benchmarks of the paper (``cacheb``, ``canrdr``,
``matrix``, ``tblook``) in isolation and under maximum contention on the
three bus configurations and prints the normalised average execution times —
the data behind Figure 1.  The paper averages 1,000 FPGA runs per
configuration; pick ``--runs``/``--scale`` according to how long you are
willing to wait (the default finishes in about a minute).

Run with::

    python examples/figure1_slowdowns.py --runs 3 --scale 0.5
"""

from __future__ import annotations

import argparse

from repro import run_figure1
from repro.workloads.eembc import FIGURE1_BENCHMARKS, available_benchmarks


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="*", default=list(FIGURE1_BENCHMARKS),
                        choices=available_benchmarks(),
                        help="benchmarks to run (default: the four in Figure 1)")
    parser.add_argument("--runs", type=int, default=3,
                        help="randomised runs per configuration (paper: 1000)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="workload length scale factor in (0, 1]")
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    result = run_figure1(
        benchmarks=args.benchmarks,
        num_runs=args.runs,
        access_scale=args.scale,
        seed=args.seed,
    )

    print("Figure 1: normalised average execution time "
          "(baseline: RP in isolation)")
    print()
    print(result.to_table())
    print()
    print(f"worst RP-CON slowdown   : {result.worst_contention_slowdown('RP-CON'):.2f}   (paper: 3.34, matrix)")
    print(f"worst CBA-CON slowdown  : {result.worst_contention_slowdown('CBA-CON'):.2f}   (paper: 2.34)")
    print(f"worst H-CBA-CON slowdown: {result.worst_contention_slowdown('H-CBA-CON'):.2f}")
    print(f"CBA isolation overhead  : {100 * result.isolation_overhead('CBA-ISO'):.1f}%  (paper: ~3%)")
    print(f"H-CBA isolation overhead: {100 * result.isolation_overhead('H-CBA-ISO'):.1f}%  (paper: negligible)")


if __name__ == "__main__":
    main()
