#!/usr/bin/env python3
"""Watch how CBA converges to a cycle-fair bandwidth split over time.

Builds the platform by hand (rather than through the scenario helpers), runs
a short-request task against three streaming tasks, attaches the windowed
:class:`~repro.bus.BusMonitor` and prints, window by window, the share of bus
cycles each core obtained — first on the baseline random-permutations bus,
then with CBA enabled.  The contrast between the two runs is the paper's
motivation made visible: equal slots are not equal bandwidth.

Run with::

    python examples/bus_fairness_monitor.py --window 2000
"""

from __future__ import annotations

import argparse

from repro import MulticoreSystem, cba_config, rp_config
from repro.analysis.fairness import fairness_report
from repro.analysis.reporting import format_table
from repro.workloads.synthetic import short_request_workload, streaming_workload


def run_once(config, window_cycles: int, seed: int):
    system = MulticoreSystem(config, seed=seed, label=config.arbitration)
    system.monitor.window_cycles = window_cycles
    system.add_task(0, short_request_workload(num_accesses=400, mean_compute_gap=6.0))
    for core in range(1, 4):
        system.add_task(core, streaming_workload(num_accesses=600))
    result = system.run(max_cycles=2_000_000)
    return system, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--window", type=int, default=2000,
                        help="monitor window length in cycles (default: 2000)")
    parser.add_argument("--seed", type=int, default=5)
    args = parser.parse_args()

    for label, config in (("RP (request fair)", rp_config()), ("CBA (cycle fair)", cba_config())):
        system, result = run_once(config, args.window, args.seed)
        print(f"=== {label} ===")
        rows = []
        for window in system.monitor.windows[:10]:
            shares = window.shares
            rows.append([
                f"{window.start_cycle}-{window.end_cycle}",
                window.utilization,
                *shares,
            ])
        print(format_table(
            ["window (cycles)", "bus utilisation",
             "core0 share", "core1 share", "core2 share", "core3 share"],
            rows,
        ))
        report = fairness_report(result.grants_per_core, result.cycles_per_core)
        print()
        print(f"whole-run slot shares : {[round(s, 3) for s in [g / max(1, sum(result.grants_per_core)) for g in result.grants_per_core]]}")
        print(f"whole-run cycle shares: {[round(s, 3) for s in result.bandwidth_shares]}")
        print(f"Jain index — slots: {report.slot_jain:.3f}, cycles: {report.cycle_jain:.3f}")
        print(f"short-request task finished after {result.execution_cycles(0)} cycles")
        print()


if __name__ == "__main__":
    main()
