#!/usr/bin/env python3
"""Reproduce the Section II illustrative example of the paper.

A task issues 1,000 short (6-cycle) bus requests over a 10,000-cycle run
while three streaming contenders issue 28-cycle requests continuously.
Request-fair arbitration gives the task a 9.4x slowdown; cycle-fair
arbitration (CBA) brings it down to roughly the core count.

The script prints the analytical closed forms alongside the cycle-accurate
simulation of the same scenario and shows how the bus cycles were actually
split between the cores in each case.

Run with::

    python examples/illustrative_example.py [--requests N] [--contender-cycles C]
"""

from __future__ import annotations

import argparse

from repro import ContentionScenario
from repro.analysis.reporting import format_table
from repro.experiments.illustrative import run_illustrative_example


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1000,
                        help="number of TuA requests (default: 1000)")
    parser.add_argument("--isolation-cycles", type=int, default=10_000,
                        help="TuA execution time in isolation (default: 10000)")
    parser.add_argument("--tua-cycles", type=int, default=6,
                        help="bus hold time of each TuA request (default: 6)")
    parser.add_argument("--contender-cycles", type=int, default=28,
                        help="bus hold time of each contender request (default: 28)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2017)
    args = parser.parse_args()

    scenario = ContentionScenario(
        isolation_cycles=args.isolation_cycles,
        tua_requests=args.requests,
        tua_request_cycles=args.tua_cycles,
        contender_request_cycles=args.contender_cycles,
        num_cores=args.cores,
    )
    result = run_illustrative_example(scenario, seed=args.seed)

    print("Section II illustrative example")
    print(f"  TuA: {scenario.tua_requests} requests x {scenario.tua_request_cycles} cycles, "
          f"{scenario.isolation_cycles} cycles in isolation")
    print(f"  contenders: {scenario.num_contenders} streaming cores x "
          f"{scenario.contender_request_cycles}-cycle requests")
    print()
    rows = [
        ["isolation", result.analytic_isolation_cycles, result.simulated_isolation_cycles],
        ["request-fair contention", result.analytic_request_fair_cycles,
         result.simulated_request_fair_cycles],
        ["cycle-fair contention (CBA)", result.analytic_cycle_fair_cycles,
         result.simulated_cycle_fair_cycles],
    ]
    print(format_table(["scenario", "analytic (cycles)", "simulated (cycles)"], rows,
                       float_format="{:.0f}"))
    print()
    print(f"request-fair slowdown: analytic {result.analytic_request_fair_slowdown:.1f}x, "
          f"simulated {result.simulated_request_fair_slowdown:.1f}x")
    print(f"cycle-fair slowdown  : analytic {result.analytic_cycle_fair_slowdown:.1f}x, "
          f"simulated {result.simulated_cycle_fair_slowdown:.1f}x")
    print()
    print("With CBA the slowdown stays in the vicinity of the core count "
          f"({scenario.num_cores}); without it, the short-request task is starved "
          "of bandwidth despite receiving an equal number of slots.")


if __name__ == "__main__":
    main()
